package scenario

import (
	"dftmsn/internal/core"
	"dftmsn/internal/sim"
)

// This file wires the sim.ShardPool into the scenario's three O(N) batch
// phases. The kernel's event dispatch stays single-threaded — the pool is
// only handed the draw-free, side-effect-free part of each phase, and the
// kernel goroutine drains the results sequentially in the exact order the
// sequential kernel produces them. That is the whole determinism argument:
// no RNG draw, scheduler operation, float accumulation, or telemetry
// record moves relative to the sequential kernel, so Results, telemetry
// bytes, and snapshots are bit-identical for every shard count (pinned by
// TestShardedMatchesSequential across the full differential matrix).

// stepWalk advances the mobility walk one tick, fanning the draw-free free
// flight across the pool when sharding is on.
func (s *Sim) stepWalk(dt float64) {
	if s.pool != nil {
		s.walk.StepSharded(dt, s.pool)
		return
	}
	s.walk.Step(dt)
}

// refreshPositions re-files moved radios in the medium's spatial index,
// fanning the cell-key computation across the pool when sharding is on.
func (s *Sim) refreshPositions() {
	if s.pool != nil {
		s.medium.RefreshPositionsSharded(s.pool)
		return
	}
	s.medium.RefreshPositions()
}

// nodeAt maps the canonical poll order — sinks in id order, then sensors —
// to a flat index, so shards can band over one range.
func (s *Sim) nodeAt(i int) *core.Node {
	if i < len(s.sinks) {
		return s.sinks[i]
	}
	return s.sensors[i-len(s.sinks)]
}

// pollCarriersSharded is pollCarriers with the carrier-sense verdicts
// computed in parallel bands. CarrierPending is a pure read (each node's
// own plan flag plus a range query over in-flight frames and
// last-refreshed positions), so shards may evaluate disjoint node bands
// concurrently. Materialization mutates node, scheduler, and telemetry
// state, so it drains sequentially in canonical order; PollCarrier
// re-checks the verdict, and since materializing one node never starts or
// stops a frame nor moves a radio, a drain-time verdict always matches the
// phase-one snapshot — the recheck is belt and braces, not a correctness
// hinge.
func (s *Sim) pollCarriersSharded() {
	total := len(s.sinks) + len(s.sensors)
	if len(s.pollBusy) < total {
		s.pollBusy = make([]bool, total)
	}
	s.pool.RunPhase("carrier-poll", func(shard int) {
		lo, hi := sim.Band(total, s.pool.Shards(), shard)
		for i := lo; i < hi; i++ {
			s.pollBusy[i] = s.nodeAt(i).CarrierPending()
		}
	})
	for i := 0; i < total; i++ {
		if s.pollBusy[i] {
			s.nodeAt(i).PollCarrier()
		}
	}
}

// prepIdleSpans is the scheduler's batch-prep hook for "idle-span" events
// (armed in New when sharding is on): before a consecutive run of plan-end
// events fires, each owning node precomputes its next plan's σ epoch table
// read-only on a shard worker. The batch's nodes are distinct (one plan-end
// event per node) and a plan-end callback mutates only its own node, so the
// tables stay valid across the whole drain; the scheduler's interleave
// guard flushes them (flushIdleSpanPrep) whenever a foreign event gets in
// between.
func (s *Sim) prepIdleSpans(evs []*sim.Event) {
	if s.pool == nil {
		return // drains compute inline; still bit-identical
	}
	s.pool.RunPhase("plan-prep", func(shard int) {
		lo, hi := sim.Band(len(evs), s.pool.Shards(), shard)
		for i := lo; i < hi; i++ {
			if n, ok := evs[i].Owner().(*core.Node); ok {
				n.PrepIdleSpan(evs[i].At())
			}
		}
	})
}

// flushIdleSpanPrep drops the prep scratch of plan-end events the scheduler
// pushed back unfired: an interleaved foreign event (traffic, a frame, a
// fault action) may invalidate any input their tables were computed from.
func (s *Sim) flushIdleSpanPrep(evs []*sim.Event) {
	for _, ev := range evs {
		if n, ok := ev.Owner().(*core.Node); ok {
			n.DropPrep()
		}
	}
}
