package scenario

import (
	"os"
	"testing"
)

// shardConfig is the sharded-kernel benchmark regime: a sparse DTN at scale.
// Traffic is rare (one message per sensor per 2000 s) and the sleep
// controller keeps nodes dormant, so the run's cost concentrates in the
// O(N) batch phases the shard pool parallelizes — mobility free flight and
// the spatial-index refresh at every 0.5 s tick — rather than in the
// inherently sequential event dispatch. This is the regime the ≥3×
// 8-shard gate (make bench-shard) is asserted in; traffic-heavy regimes
// stay event-loop-bound and are priced by the bench-scale tier instead.
func shardConfig(n int, seconds float64) Config {
	cfg := idleConfig(n, seconds, false)
	// Arrivals are so rare that a whole run sees at most a message or two:
	// this prices the patrol phase of a sparse sensing deployment, where
	// the network spends virtually all of its time moving and listening,
	// not forwarding. A single carrier is disproportionately expensive —
	// its low-power-listening preamble train fires one dispatch-bound
	// event per ~5.5 ms of receiver sleep — so traffic-heavy regimes stay
	// event-loop-bound no matter the shard count; the bench-scale tier
	// prices those. Here the O(N) batch phases dominate instead, which is
	// exactly the work the shard pool spreads across cores.
	cfg.ArrivalMeanSeconds = 10_000_000
	// Fine-grained ticks: 0.02 s resolves contact edges to ~0.1 m at
	// 5 m/s — the contact-precision regime for latency-tail studies, where
	// the instant two trajectories graze the radio range matters. This is
	// deliberately mobility-dominated: ~85% of the run is the free-flight
	// and index-refresh batch phases the pool spreads across cores, and
	// the serial residue is plan/cycle bookkeeping plus node start-up.
	cfg.MobilityTickSeconds = 0.02
	return cfg
}

// benchRunShard is the shard tier: guarded behind DFTMSN_SHARD_BENCH (run
// via `make bench-shard`) because even the sparse regime pays full
// 2000–100k-node runs per iteration, and the speedup ratios it exists to
// assert are only meaningful on a machine with at least 8 CPUs.
func benchRunShard(b *testing.B, n int, seconds float64, shards int) {
	if os.Getenv("DFTMSN_SHARD_BENCH") == "" {
		b.Skip("set DFTMSN_SHARD_BENCH=1 (or use `make bench-shard`) to run the shard tier")
	}
	cfg := shardConfig(n, seconds)
	cfg.Shards = shards
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	// events/run pins that the sharded arm fires exactly the sequential
	// arm's events — a free differential check riding the benchmark.
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// Seq variants are the sequential control arm (Shards=1, the untouched
// kernel); the unsuffixed variants run 8 shards. Durations shrink as n
// grows so every point costs roughly the same wall clock.
func BenchmarkRunSharded2000Seq(b *testing.B) { benchRunShard(b, 2000, 120, 1) }
func BenchmarkRunSharded2000(b *testing.B)    { benchRunShard(b, 2000, 120, 8) }
func BenchmarkRunSharded10kSeq(b *testing.B)  { benchRunShard(b, 10000, 60, 1) }
func BenchmarkRunSharded10k(b *testing.B)     { benchRunShard(b, 10000, 60, 8) }
func BenchmarkRunSharded100kSeq(b *testing.B) { benchRunShard(b, 100000, 20, 1) }
func BenchmarkRunSharded100k(b *testing.B)    { benchRunShard(b, 100000, 20, 8) }

// benchRunShardLowDuty is the low-duty shard point: idleConfig's aggressive
// sleep controller at the default 1 s mobility tick, traffic-free. Here the
// mobility/index batch phases are cheap and the run's cost shifts to the
// work phase 2 parallelized — construction (NewNode fan-out, walker init)
// and the idle-span plan builders that fire in bursts at quiescent instants
// — so this point prices exactly the serial residue the plan-prep and
// construction sharding shaved. Construction is timed (New inside the timed
// region, unlike benchRunShard): the construction fan-out is half the win.
func benchRunShardLowDuty(b *testing.B, n int, seconds float64, shards int) {
	if os.Getenv("DFTMSN_SHARD_BENCH") == "" {
		b.Skip("set DFTMSN_SHARD_BENCH=1 (or use `make bench-shard`) to run the shard tier")
	}
	cfg := idleConfig(n, seconds, false)
	cfg.ArrivalMeanSeconds = 10_000_000
	cfg.Shards = shards
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// The 4-shard low-duty pair backing the `make bench-shard` ≥3× gate on
// machines with 4–7 cores (the 8-shard 10k pair gates on ≥8).
func BenchmarkRunShardedLowDuty10kSeq(b *testing.B) { benchRunShardLowDuty(b, 10000, 300, 1) }
func BenchmarkRunShardedLowDuty10k(b *testing.B)    { benchRunShardLowDuty(b, 10000, 300, 4) }
