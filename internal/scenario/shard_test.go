package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"dftmsn/internal/snapshot"
	"dftmsn/internal/telemetry"
)

// shardDiffCounts are the shard counts the differential suite pins against
// the sequential kernel, per the bench-shard gate: {2, 4, 8}.
var shardDiffCounts = []int{2, 4, 8}

// runForShards runs cfg with the given shard count and a capture buffer.
func runForShards(t *testing.T, cfg Config, shards int) (Result, []telemetry.Event) {
	t.Helper()
	c := cfg
	c.Shards = shards
	buf := &telemetry.Buffer{}
	c.Recorder = buf
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, buf.Events
}

// TestShardedMatchesSequential is the end-to-end differential property test
// for the sharded kernel: with Config.Shards as the only difference, the
// whole Result — including the kernel event counters, since the sharded
// kernel fires exactly the same events — and the full typed telemetry
// event stream must be bit-identical to the sequential kernel, across the
// full differential matrix (faults, battery, low-duty, elision regimes)
// and shard counts {2, 4, 8}. Run under -race this also proves the batch
// phases never let a shard worker touch state another shard or the kernel
// goroutine owns.
func TestShardedMatchesSequential(t *testing.T) {
	for name, cfg := range elisionConfigs() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			seqRes, seqEvents := runForShards(t, cfg, 1)
			for _, shards := range shardDiffCounts {
				shrRes, shrEvents := runForShards(t, cfg, shards)
				if !reflect.DeepEqual(seqRes, shrRes) {
					t.Errorf("shards=%d: results diverge:\nsequential: %+v\nsharded:    %+v",
						shards, seqRes, shrRes)
				}
				if len(seqEvents) != len(shrEvents) {
					t.Fatalf("shards=%d: telemetry stream lengths diverge: sequential %d, sharded %d",
						shards, len(seqEvents), len(shrEvents))
				}
				for i := range seqEvents {
					if !reflect.DeepEqual(seqEvents[i], shrEvents[i]) {
						t.Fatalf("shards=%d: telemetry streams diverge at event %d:\nsequential: %s\nsharded:    %s",
							shards, i, eventString(seqEvents[i]), eventString(shrEvents[i]))
					}
				}
			}
		})
	}
}

// TestShardedSnapshotsCanonical pins that snapshots taken by a sharded run
// encode to the exact bytes of the sequential run's snapshots: sharding
// keeps no per-shard state worth snapshotting, so the canonical (sequential)
// layout is the only layout, and a snapshot is portable across shard counts
// by construction.
func TestShardedSnapshotsCanonical(t *testing.T) {
	cfg := differentialConfigs()["opt-plain"]
	cfg.CheckpointEvery = 250
	seqRes, _ := runForShards(t, cfg, 1)
	for _, shards := range shardDiffCounts {
		shrRes, _ := runForShards(t, cfg, shards)
		if len(seqRes.Checkpoints) == 0 || len(seqRes.Checkpoints) != len(shrRes.Checkpoints) {
			t.Fatalf("shards=%d: checkpoint counts diverge: sequential %d, sharded %d",
				shards, len(seqRes.Checkpoints), len(shrRes.Checkpoints))
		}
		for i := range seqRes.Checkpoints {
			a, err := snapshot.EncodeBytes(seqRes.Checkpoints[i])
			if err != nil {
				t.Fatal(err)
			}
			b, err := snapshot.EncodeBytes(shrRes.Checkpoints[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("shards=%d: checkpoint %d encodes to different bytes than sequential", shards, i)
			}
		}
	}
}

// TestEncodeConfigIgnoresShards pins Shards as a runtime-only knob: like
// Cancel, Recorder, and OnProgress it must not appear in the canonical
// config encoding, so shard counts never perturb service cache keys or
// snapshot fingerprints.
func TestEncodeConfigIgnoresShards(t *testing.T) {
	cfg := differentialConfigs()["opt-plain"]
	plain, err := EncodeConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 8
	sharded, err := EncodeConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, sharded) {
		t.Fatalf("EncodeConfig depends on Shards:\nshards=1: %s\nshards=8: %s", plain, sharded)
	}
}
