package scenario

import (
	"math"
	"testing"

	"dftmsn/internal/telemetry"
)

// TestCheckpointMidIdleSpan pins the τ-stream rewind edge: a checkpoint
// taken while nodes are inside coalesced idle spans — their σ sequences
// pre-drawn, their RNG rewind points captured — must restore and continue
// bit-identically. The generic differential covers the mechanism; this test
// asserts the edge actually occurs at the checkpoint instant.
func TestCheckpointMidIdleSpan(t *testing.T) {
	cfg := elisionConfigs()["nosleep-idle"]

	baseBuf := &telemetry.Buffer{}
	c := cfg
	c.Recorder = baseBuf
	sb, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := sb.Run()
	if err != nil {
		t.Fatal(err)
	}

	buf := &telemetry.Buffer{}
	c2 := cfg
	c2.Recorder = buf
	s, err := New(c2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.CheckpointAt(0.4 * cfg.DurationSeconds)
	if err != nil {
		t.Fatal(err)
	}
	// The edge under test: at least one sensor checkpointed mid-plan with a
	// pre-drawn σ sequence and a rewind point.
	midPlan := 0
	for _, ns := range snap.Nodes {
		if ns.Plan != nil {
			if len(ns.Plan.Sigmas) == 0 || len(ns.Plan.RNGSnap) == 0 {
				t.Fatalf("node %d plan snapshot missing σ sequence or RNG rewind point: %+v", ns.ID, ns.Plan)
			}
			midPlan++
		}
	}
	if midPlan == 0 {
		t.Fatal("no node was inside an idle-span plan at the checkpoint; the edge is not exercised")
	}
	live := 0
	for _, n := range s.Sensors() {
		if n.IdleSpanActive() {
			live++
		}
	}
	for _, n := range s.Sinks() {
		if n.IdleSpanActive() {
			live++
		}
	}
	if live != midPlan {
		t.Fatalf("snapshot has %d active plans, live simulation has %d", midPlan, live)
	}
	prefix := append([]telemetry.Event(nil), buf.Events...)

	restBuf := &telemetry.Buffer{}
	restored, err := Restore(snap, func(c *Config) { c.Recorder = restBuf })
	if err != nil {
		t.Fatal(err)
	}
	restRes, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	compareArm(t, "mid-idle-span restore", baseRes, restRes, baseBuf.Events, concatEvents(prefix, restBuf.Events))
}

// TestCheckpointOnWheelTick pins the wheel rearm edge: a checkpoint taken at
// an instant where a mobility wheel tick just fired (the wheel has consumed
// its event and re-armed the next) must restore and continue bit-identically.
// The eager arm guarantees every tick is a real fired event to land on.
func TestCheckpointOnWheelTick(t *testing.T) {
	cfg := elisionConfigs()["opt-plain"]
	cfg.EagerDecay = true

	baseBuf := &telemetry.Buffer{}
	c := cfg
	c.Recorder = baseBuf
	sb, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := sb.Run()
	if err != nil {
		t.Fatal(err)
	}

	buf := &telemetry.Buffer{}
	c2 := cfg
	c2.Recorder = buf
	s, err := New(c2)
	if err != nil {
		t.Fatal(err)
	}
	// Step to the first quiescent instant past 200 s that falls exactly on
	// a mobility tick (ticks fire at whole seconds).
	sched := s.Scheduler()
	for {
		next, ok := sched.NextEventTime()
		if !ok || float64(next) > cfg.DurationSeconds {
			t.Fatal("no tick-aligned quiescent instant found")
		}
		sched.Step()
		now := float64(sched.Now())
		if now > 200 && now == math.Trunc(now) && s.quiescent() {
			break
		}
	}
	tickAt := float64(sched.Now())
	snap, err := s.CheckpointAt(tickAt)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Time != tickAt {
		t.Fatalf("checkpoint moved off the tick: took it at %v, wanted %v", snap.Time, tickAt)
	}
	if snap.Wheel.Ev == nil || float64(snap.Wheel.Ev.At) != tickAt+cfg.MobilityTickSeconds {
		t.Fatalf("wheel not re-armed for the next tick: %+v", snap.Wheel)
	}
	prefix := append([]telemetry.Event(nil), buf.Events...)

	restBuf := &telemetry.Buffer{}
	restored, err := Restore(snap, func(c *Config) { c.Recorder = restBuf })
	if err != nil {
		t.Fatal(err)
	}
	restRes, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	compareArm(t, "wheel-tick restore", baseRes, restRes, baseBuf.Events, concatEvents(prefix, restBuf.Events))
}
