package scenario

import (
	"reflect"
	"testing"

	"dftmsn/internal/faults"
	"dftmsn/internal/snapshot"
	"dftmsn/internal/telemetry"
)

// concatEvents joins a recorded prefix and continuation without aliasing
// either slice's backing array.
func concatEvents(prefix, rest []telemetry.Event) []telemetry.Event {
	out := make([]telemetry.Event, 0, len(prefix)+len(rest))
	out = append(out, prefix...)
	return append(out, rest...)
}

// compareArm asserts an arm's Result and full telemetry stream are
// bit-identical to the straight run's.
func compareArm(t *testing.T, arm string, wantRes, gotRes Result, wantEvents, gotEvents []telemetry.Event) {
	t.Helper()
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Errorf("%s: results diverge:\nstraight: %+v\n%s: %+v", arm, wantRes, arm, gotRes)
	}
	if len(wantEvents) != len(gotEvents) {
		t.Fatalf("%s: telemetry stream lengths diverge: straight %d, %s %d",
			arm, len(wantEvents), arm, len(gotEvents))
	}
	for i := range wantEvents {
		if !reflect.DeepEqual(wantEvents[i], gotEvents[i]) {
			t.Fatalf("%s: telemetry streams diverge at event %d:\nstraight: %s\n%s: %s",
				arm, i, eventString(wantEvents[i]), arm, eventString(gotEvents[i]))
		}
	}
}

// TestSnapshotDifferential is the end-to-end correctness gate for the
// snapshot tentpole, over the full 10-config differential matrix (faults,
// battery, burst loss, low-duty elision, mobile sinks). Three arms must be
// bit-identical on the whole Result and the full typed telemetry stream:
//
//  1. the straight run to the horizon;
//  2. checkpoint mid-run, encode + decode the snapshot through the
//     versioned codec, restore in a fresh process image, continue;
//  3. fork in memory at the checkpoint, continue the clone.
//
// On top of that, the simulation the checkpoint was exported from must
// itself continue unperturbed — exports never mutate.
func TestSnapshotDifferential(t *testing.T) {
	for name, cfg := range elisionConfigs() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()

			// Arm 1: the straight run.
			straight := func() (Result, []telemetry.Event) {
				c := cfg
				buf := &telemetry.Buffer{}
				c.Recorder = buf
				s, err := New(c)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res, buf.Events
			}
			baseRes, baseEvents := straight()

			// Checkpoint at ~40% of the horizon.
			mid := 0.4 * cfg.DurationSeconds
			buf := &telemetry.Buffer{}
			c := cfg
			c.Recorder = buf
			s, err := New(c)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := s.CheckpointAt(mid)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Time < mid || snap.Time >= cfg.DurationSeconds {
				t.Fatalf("checkpoint landed at %v s, want within [%v, %v)", snap.Time, mid, cfg.DurationSeconds)
			}
			prefix := append([]telemetry.Event(nil), buf.Events...)

			// Round-trip the snapshot through the versioned codec: the
			// restore arm continues from decoded bytes, exactly like a fresh
			// process image would.
			blob, err := snapshot.EncodeBytes(snap)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := snapshot.DecodeBytes(blob)
			if err != nil {
				t.Fatal(err)
			}

			// Arm 3: fork in memory before the original moves again.
			forkBuf := &telemetry.Buffer{}
			fork, err := s.Fork(func(c *Config) { c.Recorder = forkBuf })
			if err != nil {
				t.Fatal(err)
			}

			// The exporting simulation continues to the horizon untouched.
			origRes, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			compareArm(t, "original-after-export", baseRes, origRes, baseEvents, buf.Events)

			forkRes, err := fork.Run()
			if err != nil {
				t.Fatal(err)
			}
			compareArm(t, "fork", baseRes, forkRes, baseEvents, concatEvents(prefix, forkBuf.Events))

			// Arm 2: restore from the decoded bytes and continue.
			restBuf := &telemetry.Buffer{}
			restored, err := Restore(decoded, func(c *Config) { c.Recorder = restBuf })
			if err != nil {
				t.Fatal(err)
			}
			restRes, err := restored.Run()
			if err != nil {
				t.Fatal(err)
			}
			compareArm(t, "restore", baseRes, restRes, baseEvents, concatEvents(prefix, restBuf.Events))
		})
	}
}

// TestPeriodicCheckpointsDontPerturb pins the Run-integrated checkpointing:
// a run with CheckpointEvery set produces the checkpoints and an otherwise
// bit-identical Result.
func TestPeriodicCheckpointsDontPerturb(t *testing.T) {
	for _, name := range []string{"opt-churn-kills", "opt-low-duty"} {
		name := name
		cfg, ok := elisionConfigs()[name]
		if !ok {
			t.Fatalf("config %s missing from the differential matrix", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			run := func(every float64) Result {
				c := cfg
				c.CheckpointEvery = every
				s, err := New(c)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			plain := run(0)
			every := cfg.DurationSeconds / 4
			chk := run(every)
			if want := 3; len(chk.Checkpoints) != want {
				t.Fatalf("got %d checkpoints, want %d", len(chk.Checkpoints), want)
			}
			last := 0.0
			for i, snap := range chk.Checkpoints {
				k := float64(i+1) * every
				if snap.Time < k || snap.Time <= last {
					t.Fatalf("checkpoint %d at %v s, want >= %v and increasing", i, snap.Time, k)
				}
				last = snap.Time
			}
			chk.Checkpoints = nil
			if !reflect.DeepEqual(plain, chk) {
				t.Fatalf("checkpointing perturbed the run:\nplain: %+v\nchk:   %+v", plain, chk)
			}
		})
	}
}

// TestRestoreForPlanMatchesScratch pins the instant-reproducer property: a
// warm snapshot taken before any fault, re-armed with a *different* fault
// plan, must continue bit-identically to a from-scratch run under that
// plan.
func TestRestoreForPlanMatchesScratch(t *testing.T) {
	base := elisionConfigs()["opt-plain"]
	plan := &faults.Plan{
		Churn:       &faults.Churn{StartSeconds: 300, MTBFSeconds: 200, MTTRSeconds: 50, Fraction: 0.4},
		SinkOutages: []faults.Outage{{Sink: 0, StartSeconds: 350, DurationSeconds: 100}},
		Kills:       []faults.Kill{{AtSeconds: 400, Fraction: 0.2}},
	}

	// The scratch arm: the base config with the plan applied from t=0.
	withPlan := base
	withPlan.Faults = plan
	scratchBuf := &telemetry.Buffer{}
	withPlan.Recorder = scratchBuf
	sw, err := New(withPlan)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Warm arm: checkpoint the *fault-free* base config before the plan's
	// first fault, then substitute the plan.
	buf := &telemetry.Buffer{}
	c := base
	c.Recorder = buf
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.CheckpointAt(250)
	if err != nil {
		t.Fatal(err)
	}
	if t0, _ := plan.FirstFaultSeconds(); snap.Time >= t0 {
		t.Fatalf("checkpoint at %v s is not before the plan's first fault (%v s)", snap.Time, t0)
	}
	prefix := append([]telemetry.Event(nil), buf.Events...)

	restBuf := &telemetry.Buffer{}
	restored, err := RestoreForPlan(snap, plan, func(c *Config) { c.Recorder = restBuf })
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	compareArm(t, "restore-for-plan", wantRes, gotRes, scratchBuf.Events, concatEvents(prefix, restBuf.Events))
}
