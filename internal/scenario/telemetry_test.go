package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"dftmsn/internal/core"
	"dftmsn/internal/telemetry"
	"dftmsn/internal/trace"
)

// TestTelemetryReport runs a small scenario with the telemetry layer armed
// and checks the metrics registry, the sampled series, and the trace-v2
// event stream against the run's digest.
func TestTelemetryReport(t *testing.T) {
	cfg := quickConfig(core.SchemeOPT)
	cfg.Telemetry = true
	buf := &telemetry.Buffer{}
	cfg.Recorder = buf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Telemetry
	if rep == nil || rep.Run == nil {
		t.Fatal("no telemetry report")
	}
	m := rep.Run

	gen := m.EventCount(telemetry.EvGen) + m.EventCount(telemetry.EvGenDrop)
	if int(gen) != res.Delivery.Generated {
		t.Errorf("gen counters %v != generated %d", gen, res.Delivery.Generated)
	}
	if int(m.EventCount(telemetry.EvDeliver)) != res.Delivery.Delivered {
		t.Errorf("deliver counter %v != delivered %d", m.EventCount(telemetry.EvDeliver), res.Delivery.Delivered)
	}
	if m.DeliveryDelay.Count() != uint64(res.Delivery.Delivered) {
		t.Errorf("delay histogram n=%d != delivered %d", m.DeliveryDelay.Count(), res.Delivery.Delivered)
	}
	if got, want := m.DeliveryDelay.Mean(), res.Delivery.AvgDelaySeconds; res.Delivery.Delivered > 0 {
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("delay histogram mean %v != collector mean %v", got, want)
		}
	}
	if m.EventCount(telemetry.EvSleep) != float64(res.Sleeps) {
		t.Errorf("sleep counter %v != sleeps %d", m.EventCount(telemetry.EvSleep), res.Sleeps)
	}
	if m.Xi.Count() == 0 || m.QueueOccupancy.Count() == 0 {
		t.Error("periodic histograms not fed")
	}

	if rep.Series == nil || len(rep.Series.Samples) < 100 {
		t.Fatalf("series missing or short: %+v", rep.Series)
	}
	last := rep.Series.Samples[len(rep.Series.Samples)-1]
	if last.Time != res.SimSeconds {
		t.Errorf("final sample at %v, want %v", last.Time, res.SimSeconds)
	}

	// The typed stream agrees with the counters, and its provenance ledger
	// sees every delivery.
	var delivers int
	for _, ev := range buf.Events {
		if ev.Type == telemetry.EvDeliver {
			delivers++
			if ev.Value <= 0 {
				t.Errorf("deliver with non-positive delay: %+v", ev)
			}
		}
	}
	if delivers != res.Delivery.Delivered {
		t.Errorf("stream delivers %d != %d", delivers, res.Delivery.Delivered)
	}
	ledger := telemetry.BuildLedger(buf.Events)
	deliveredChains := 0
	for _, id := range ledger.IDs() {
		if ledger.Message(id).Delivered {
			deliveredChains++
		}
	}
	if deliveredChains != res.Delivery.Delivered {
		t.Errorf("ledger delivered %d != %d", deliveredChains, res.Delivery.Delivered)
	}
}

// TestTelemetryDoesNotPerturbRun locks in that attaching the full
// telemetry stack leaves the simulation byte-identical: observability must
// never change the physics.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	base, err := New(quickConfig(core.SchemeOPT))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := quickConfig(core.SchemeOPT)
	cfg.Telemetry = true
	cfg.Recorder = &telemetry.Buffer{}
	var legacy bytes.Buffer
	cfg.Tracer = trace.NewWriter(&legacy, 0)
	traced, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := traced.Run()
	if err != nil {
		t.Fatal(err)
	}

	if plain.Delivery != instr.Delivery {
		t.Errorf("delivery digest changed under telemetry:\n%+v\n%+v", plain.Delivery, instr.Delivery)
	}
	if plain.Events != instr.Events {
		t.Errorf("kernel events %d != %d", plain.Events, instr.Events)
	}
	if !reflect.DeepEqual(plain.Channel, instr.Channel) {
		t.Errorf("channel stats changed under telemetry")
	}
	if legacy.Len() == 0 {
		t.Error("legacy adapter produced no TSV output")
	}
	// The legacy TSV must still satisfy the historical trace invariants.
	events, err := trace.Parse(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatalf("legacy trace parse: %v", err)
	}
	if issues := trace.Verify(events); len(issues) != 0 {
		t.Errorf("legacy trace verify: %v", issues)
	}
}
