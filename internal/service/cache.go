package service

import (
	"encoding/json"
	"sync"
)

// Cache is the content-addressed result store: cache key (see CacheKey) to
// the job's JSON result payload. Entries are immutable once stored —
// determinism guarantees any two computations of a key agree — so a hit
// can be served without revalidation and with zero simulation events.
// The journal warms the cache on restart; the map itself is memory-only.
type Cache struct {
	mu      sync.Mutex
	entries map[string]json.RawMessage
	hits    uint64
	misses  uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]json.RawMessage)}
}

// Get returns the payload stored under key, counting the hit or miss.
func (c *Cache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return p, ok
}

// Put stores a payload under key. First write wins: a concurrent duplicate
// computation of the same key stores an identical payload anyway.
func (c *Cache) Put(key string, payload json.RawMessage) {
	if key == "" || payload == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = payload
	}
}

// Stats reports entry count and the hit/miss counters.
func (c *Cache) Stats() (entries int, hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.hits, c.misses
}
