package service

import (
	"bytes"
	"strings"
	"testing"

	"dftmsn/internal/scenario"
)

// FuzzRequestDecode throws arbitrary bytes at the service request decoder
// and pins the invariants the cache hangs off: decoding never panics, an
// accepted config's canonical encoding is a fixed point (encode → decode →
// encode is byte-identical), and the derived cache key is stable across
// that round trip — two spellings of the same scenario must share one key.
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"kind":"run","config":{"scheme":"OPT"}}`))
	f.Add([]byte(`{"kind":"run","tenant":"t","deadline_ms":100,"config":{"scheme":"ZBR","sensors":9,"sinks":3,"duration_s":500,"seed":42}}`))
	f.Add([]byte(`{"kind":"sweep","sweep":{"experiment":"fig2","runs":2}}`))
	f.Add([]byte(`{"kind":"chaos","chaos":{"runs":5,"seed":7},"config":{"scheme":"OPT","faults":{"churn":{"mtbf_s":100,"mttr_s":10}}}}`))
	f.Add([]byte(`{"kind":"run","config":{"scheme":"EPIDEMIC","params":{"alpha":0.5}}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`garbage`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, cfg, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; not panicking is the property
		}
		key1, err := requestKey(req, cfg)
		if err != nil {
			t.Fatalf("accepted request has no key: %v", err)
		}
		if len(key1) != 64 || strings.ToLower(key1) != key1 {
			t.Fatalf("malformed cache key %q", key1)
		}
		if req.Kind == "sweep" {
			return // no embedded config to round-trip
		}
		enc1, err := scenario.EncodeConfig(cfg)
		if err != nil {
			t.Fatalf("accepted config does not encode: %v", err)
		}
		cfg2, err := scenario.DecodeConfig(enc1)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v\n%s", err, enc1)
		}
		enc2, err := scenario.EncodeConfig(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\n---\n%s", enc1, enc2)
		}
		req2 := req
		req2.Config = enc1
		key2, err := requestKey(req2, cfg2)
		if err != nil {
			t.Fatal(err)
		}
		if key1 != key2 {
			t.Fatalf("cache key unstable across canonical round trip: %s vs %s", key1, key2)
		}
	})
}
