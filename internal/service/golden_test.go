package service

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dftmsn/internal/core"
	"dftmsn/internal/faults"
	"dftmsn/internal/scenario"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files")

// goldenConfigs is the matrix whose canonical encodings and cache keys are
// pinned. Every contributor to the encoding appears somewhere: scheme,
// topology, radio, traffic, faults (legacy fields and structured plans),
// thresholds, invariants, custom params, checkpointing.
func goldenConfigs() []struct {
	name string
	cfg  scenario.Config
} {
	plain := scenario.DefaultConfig(core.SchemeOPT)

	seeded := scenario.DefaultConfig(core.SchemeZBR)
	seeded.Seed = 12345
	seeded.NumSensors = 42
	seeded.NumSinks = 3
	seeded.DurationSeconds = 7200
	seeded.ArrivalMeanSeconds = 55
	seeded.QueueCapacity = 9

	faulty := scenario.DefaultConfig(core.SchemeNOOPT)
	faulty.Faults = &faults.Plan{
		Churn:       &faults.Churn{MTBFSeconds: 300, MTTRSeconds: 60, Fraction: 0.25},
		SinkOutages: []faults.Outage{{Sink: 0, StartSeconds: 100, DurationSeconds: 50}},
		Burst:       &faults.Burst{GoodLossProb: 0.01, BadLossProb: 0.5, MeanGoodSeconds: 80, MeanBadSeconds: 20},
		Kills:       []faults.Kill{{AtSeconds: 900, Fraction: 0.1}},
	}
	faulty.Invariants = "report"
	faulty.Telemetry = true

	tuned := scenario.DefaultConfig(core.SchemeEpidemic)
	p := core.DefaultParams(core.SchemeEpidemic)
	p.CollisionTarget = 0.07
	p.NeighborTTL = 45
	tuned.Params = &p
	tuned.BatteryJoules = 150
	tuned.MobileSinks = true
	tuned.LossProb = 0.05
	tuned.DeliveryThreshold = 0.9
	tuned.DropThreshold = 0.05
	tuned.CheckpointEvery = 500
	tuned.TrafficStopSeconds = 4000

	legacy := scenario.DefaultConfig(core.SchemeDirect)
	legacy.FailFraction = 0.2
	legacy.FailAtSeconds = 1000
	legacy.LinearMedium = true
	legacy.EagerDecay = true
	legacy.InjectSkipSenderFTD = true

	return []struct {
		name string
		cfg  scenario.Config
	}{
		{"default-opt", plain},
		{"seeded-zbr", seeded},
		{"faulted-noopt", faulty},
		{"tuned-epidemic", tuned},
		{"legacy-direct", legacy},
	}
}

// TestCanonicalEncodingAndCacheKeyGolden pins the exact canonical JSON
// bytes of EncodeConfig and the cache key derived from them for a config
// matrix. These bytes are load-bearing three ways — snapshots embed them,
// the chaos state file fingerprints with them, and the service cache is
// addressed by their hash — so any drift must be a conscious, reviewed
// change (run with -update to re-pin).
//
// Keys are derived under a pinned build version: the golden file must not
// change just because the binary was rebuilt.
func TestCanonicalEncodingAndCacheKeyGolden(t *testing.T) {
	savedVersion := buildVersion
	buildVersion = "golden-test-build"
	defer func() { buildVersion = savedVersion }()

	var got bytes.Buffer
	for _, c := range goldenConfigs() {
		blob, err := scenario.EncodeConfig(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		// The encoding must decode back to an identical encoding — the
		// fixed-point property every consumer of these bytes assumes.
		cfg2, err := scenario.DecodeConfig(blob)
		if err != nil {
			t.Fatalf("%s: canonical bytes do not decode: %v", c.name, err)
		}
		blob2, err := scenario.EncodeConfig(cfg2)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("%s: canonical encoding is not a fixed point", c.name)
		}
		key, err := CacheKey(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		fmt.Fprintf(&got, "== %s\n%skey=%s\n", c.name, blob, key)
	}

	path := filepath.Join("testdata", "cachekeys.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("canonical encodings or cache keys drifted from %s.\n"+
			"If this change is intentional (it invalidates caches and snapshot compatibility), re-pin with:\n"+
			"  go test ./internal/service -run Golden -update\ngot:\n%s", path, got.Bytes())
	}
}
