package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// Job states as journaled. queued/running/interrupted are resumable: a
// journal whose last word on a job is one of them re-enqueues the job on
// restart. done/cancelled/quarantined are terminal.
const (
	stateQueued      = "queued"
	stateRunning     = "running"
	stateInterrupted = "interrupted" // shutdown or crash cut it short; will resume
	stateDone        = "done"
	stateCancelled   = "cancelled" // deadline expired; partial result reported
	stateQuarantined = "quarantined"
)

// terminalState reports whether a journaled state ends a job's life.
func terminalState(s string) bool {
	return s == stateDone || s == stateCancelled || s == stateQuarantined
}

// journalEntry is one fsync'd line of the job journal: a state transition,
// carrying the submission on "queued" and the result payload on "done".
type journalEntry struct {
	Job     string          `json:"job"`
	State   string          `json:"state"`
	Kind    string          `json:"kind,omitempty"`
	Tenant  string          `json:"tenant,omitempty"`
	Key     string          `json:"key,omitempty"`
	Attempt int             `json:"attempt,omitempty"`
	Error   string          `json:"error,omitempty"`
	Cached  bool            `json:"cached,omitempty"`
	Request *Request        `json:"request,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// journal is the crash-safe write-ahead log of job state transitions:
// append-only JSONL, fsync'd per record, so the set of acknowledged
// transitions survives kill -9. A nil-file journal (no path configured)
// accepts appends and discards them.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (or creates) the journal for appending.
func openJournal(path string) (*journal, error) {
	if path == "" {
		return &journal{}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append writes one entry and forces it to stable storage before
// returning, so a transition the server acted on is never lost to a crash.
func (j *journal) append(e journalEntry) error {
	if j.f == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}

// replayedJob is one job reconstructed from the journal: its submission,
// its last journaled state, and its payload when terminal.
type replayedJob struct {
	ID      string
	Request Request
	Kind    string
	Tenant  string
	Key     string
	State   string
	Error   string
	Cached  bool
	Payload json.RawMessage
}

// replayJournal reads a journal and folds it into per-job final states, in
// first-submission order. A truncated trailing line — the crash arriving
// mid-write — is tolerated and ignored; any earlier malformed line is
// corruption and an error. A missing file yields an empty replay.
func replayJournal(path string) ([]replayedJob, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	defer f.Close()

	jobs := make(map[string]*replayedJob)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			// The malformed line was not the last one: real corruption.
			return nil, pendingErr
		}
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			pendingErr = fmt.Errorf("service: journal %s line %d: %w", path, line, err)
			continue
		}
		j := jobs[e.Job]
		if j == nil {
			j = &replayedJob{ID: e.Job}
			jobs[e.Job] = j
			order = append(order, e.Job)
		}
		j.State = e.State
		if e.Kind != "" {
			j.Kind = e.Kind
		}
		if e.Tenant != "" {
			j.Tenant = e.Tenant
		}
		if e.Key != "" {
			j.Key = e.Key
		}
		if e.Request != nil {
			j.Request = *e.Request
		}
		if e.Error != "" {
			j.Error = e.Error
		}
		if e.Cached {
			j.Cached = true
		}
		if len(e.Payload) != 0 {
			j.Payload = append(json.RawMessage(nil), e.Payload...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: journal %s: %w", path, err)
	}
	out := make([]replayedJob, 0, len(order))
	for _, id := range order {
		out = append(out, *jobs[id])
	}
	return out, nil
}
