// Package service is the hardened scenario daemon behind cmd/dftserve: an
// HTTP/JSON front end that accepts scenario runs, named sweeps, and chaos
// campaigns, executes them on a bounded worker pool, and survives the
// operational failure modes a long-lived simulation service meets —
// overload (bounded admission queue with backpressure and per-tenant
// quotas), runaway jobs (cooperative wall-clock deadlines that preserve
// bit-identical telemetry prefixes), poison jobs (panic isolation, bounded
// retry with backoff, quarantine), repeated work (a content-addressed
// result cache — determinism makes the scenario config plus seed plus
// build a complete identity for the result), and crashes (a fsync'd JSONL
// journal that replays unfinished jobs on restart, resuming chaos
// campaigns from their state files to bit-identical verdicts).
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"

	"dftmsn/internal/scenario"
)

// buildVersion identifies the running build in cache keys, so results
// computed by one binary are never served as another's. Module version and
// VCS revision both feed in when the build carries them; a plain `go test`
// build degrades to "(devel)", which still separates it from any released
// build.
var buildVersion = func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			v += "+" + s.Value
		}
	}
	if v == "" {
		v = "unknown"
	}
	return v
}()

// BuildVersion reports the build identity mixed into every cache key.
func BuildVersion() string { return buildVersion }

// CacheKey derives the content address of a scenario run's Result: the
// SHA-256 of the canonical config encoding, the seed, and the build
// version. The simulation is deterministic, so these three fully determine
// the Result — two submissions with the same key can share one simulation.
// Runtime-only attachments (recorders, tracers, cancellation probes) are
// excluded from the encoding and therefore never perturb the key.
func CacheKey(cfg scenario.Config) (string, error) {
	blob, err := scenario.EncodeConfig(cfg)
	if err != nil {
		return "", err
	}
	return keyOf("run", blob, []byte(fmt.Sprintf("seed=%d", cfg.Seed))), nil
}

// keyOf hashes a job kind and its identity parts with the build version
// into a hex cache key. Parts are length-prefixed so no two part lists
// collide by concatenation.
func keyOf(kind string, parts ...[]byte) string {
	h := sha256.New()
	add := func(b []byte) {
		fmt.Fprintf(h, "%d:", len(b))
		h.Write(b)
	}
	add([]byte("dftmsn-result-v1"))
	add([]byte(buildVersion))
	add([]byte(kind))
	for _, p := range parts {
		add(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}
