package service

import (
	"math"
	"sync"
	"time"
)

// tenantLimiter hands out admission tokens per tenant: a classic token
// bucket refilled at rate tokens/second up to burst. A drained bucket
// rejects with the wait until the next token, which the server surfaces as
// a Retry-After header — backpressure the client can act on instead of a
// blind 500.
type tenantLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 disables limiting
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time // test hook; time.Now in production
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	if burst < 1 {
		burst = 1
	}
	return &tenantLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// admit takes one token from tenant's bucket. When the bucket is dry it
// returns ok=false and how long until a token is available.
func (l *tenantLimiter) admit(tenant string) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(math.Ceil(need)) * time.Second
}
