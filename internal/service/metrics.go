package service

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dftmsn/internal/telemetry"
)

// metricsPrefix namespaces every exported series.
const metricsPrefix = "dftserve_"

// counterNames is the fixed set of service health counters, in exposition
// order. The set is closed at construction so the hot path can increment
// lock-free atomics without ever touching a map under a mutex.
var counterNames = []string{
	"jobs_submitted", "jobs_done", "jobs_cancelled", "jobs_interrupted",
	"jobs_quarantined", "jobs_resumed", "retries",
	"rejected_queue_full", "rejected_quota", "cache_served",
	"stream_requests",
}

// tenantCounters are the counter families that additionally keep one
// labelled series per tenant. Deliberately few: tenants are unbounded in
// principle, so only admission-facing families carry the label.
var tenantCounters = map[string]bool{
	"jobs_submitted": true,
	"cache_served":   true,
	"rejected_quota": true,
}

// serviceMetrics is the server's metrics plane. Increments hit sharded
// atomics (no shared mutex on the hot path — the old countMetric took a
// global lock per increment); the telemetry.Registry stays the exporter's
// read path: scrapes mirror the atomics into it and render from there, so
// registration order, bucket layout, and exposition all live in one place.
type serviceMetrics struct {
	counters map[string]*atomic.Uint64 // read-only map shape after construction

	tmu    sync.RWMutex
	tenant map[string]map[string]*atomic.Uint64 // family -> tenant -> count

	// hmu guards the registry (not thread-safe) and the histograms.
	// Histogram observations are per-job (twice per job), never per-event,
	// so a mutex there costs nothing measurable.
	hmu       sync.Mutex
	reg       *telemetry.Registry
	queueWait *telemetry.Histogram
	runSecs   *telemetry.Histogram

	gQueueDepth    *telemetry.Gauge
	gQueueCap      *telemetry.Gauge
	gRunning       *telemetry.Gauge
	gCacheEntries  *telemetry.Gauge
	gStreamDropped *telemetry.Gauge
	cCacheHits     *telemetry.Counter
	cCacheMisses   *telemetry.Counter
}

func newServiceMetrics() *serviceMetrics {
	m := &serviceMetrics{
		counters: make(map[string]*atomic.Uint64, len(counterNames)),
		tenant:   make(map[string]map[string]*atomic.Uint64),
		reg:      telemetry.NewRegistry(),
	}
	for _, name := range counterNames {
		m.counters[name] = new(atomic.Uint64)
		m.reg.Counter(name)
	}
	m.cCacheHits = m.reg.Counter("cache_hits")
	m.cCacheMisses = m.reg.Counter("cache_misses")
	m.gQueueDepth = m.reg.Gauge("queue_depth")
	m.gQueueCap = m.reg.Gauge("queue_capacity")
	m.gRunning = m.reg.Gauge("running")
	m.gCacheEntries = m.reg.Gauge("cache_entries")
	m.gStreamDropped = m.reg.Gauge("stream_dropped_events")
	// 1 ms .. ~4.4 min in powers of 4: queueing and run times span from
	// cache-warm microbenchmarks to paper-scale sweeps.
	buckets := telemetry.ExponentialBuckets(0.001, 4, 10)
	m.queueWait = m.reg.Histogram("queue_wait_seconds", buckets)
	m.runSecs = m.reg.Histogram("job_run_seconds", buckets)
	return m
}

// count increments one service counter: a single atomic add, safe from any
// goroutine, never contending on a lock.
func (m *serviceMetrics) count(name string) {
	if c, ok := m.counters[name]; ok {
		c.Add(1)
	}
}

// countTenant increments a counter and, for the labelled families, its
// per-tenant series. First sight of a tenant takes the write lock once;
// every later increment is an RLock plus an atomic add.
func (m *serviceMetrics) countTenant(name, tenant string) {
	m.count(name)
	if !tenantCounters[name] {
		return
	}
	m.tmu.RLock()
	a := m.tenant[name][tenant]
	m.tmu.RUnlock()
	if a == nil {
		m.tmu.Lock()
		fam := m.tenant[name]
		if fam == nil {
			fam = make(map[string]*atomic.Uint64)
			m.tenant[name] = fam
		}
		if a = fam[tenant]; a == nil {
			a = new(atomic.Uint64)
			fam[tenant] = a
		}
		m.tmu.Unlock()
	}
	a.Add(1)
}

// observeQueueWait and observeRun feed the latency histograms.
func (m *serviceMetrics) observeQueueWait(d time.Duration) {
	m.hmu.Lock()
	m.queueWait.Observe(d.Seconds())
	m.hmu.Unlock()
}

func (m *serviceMetrics) observeRun(d time.Duration) {
	m.hmu.Lock()
	m.runSecs.Observe(d.Seconds())
	m.hmu.Unlock()
}

// tenantSeries snapshots one family's labelled series, sorted by tenant
// for a deterministic exposition.
func (m *serviceMetrics) tenantSeries(name string) (tenants []string, values []uint64) {
	m.tmu.RLock()
	fam := m.tenant[name]
	tenants = make([]string, 0, len(fam))
	for t := range fam {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	values = make([]uint64, len(tenants))
	for i, t := range tenants {
		values[i] = fam[t].Load()
	}
	m.tmu.RUnlock()
	return tenants, values
}

// gaugeSnapshot carries the point-in-time server state a scrape mirrors
// into the registry's gauges.
type gaugeSnapshot struct {
	queueDepth    int64
	queueCapacity int
	running       int64
	cacheEntries  int
	cacheHits     uint64
	cacheMisses   uint64
	streamDropped uint64
}

// render writes the Prometheus text exposition (0.0.4). It mirrors the
// atomic counters and the gauge snapshot into the registry, then renders in
// registration order — each counter family as its TYPE header, the
// unlabelled total, and any per-tenant series, grouped as the format
// requires.
func (m *serviceMetrics) render(w http.ResponseWriter, g gaugeSnapshot, build string) {
	m.hmu.Lock()
	defer m.hmu.Unlock()
	for name, a := range m.counters {
		c := m.reg.Counter(name)
		c.Add(float64(a.Load()) - c.Value())
	}
	m.cCacheHits.Add(float64(g.cacheHits) - m.cCacheHits.Value())
	m.cCacheMisses.Add(float64(g.cacheMisses) - m.cCacheMisses.Value())
	m.gQueueDepth.Set(float64(g.queueDepth))
	m.gQueueCap.Set(float64(g.queueCapacity))
	m.gRunning.Set(float64(g.running))
	m.gCacheEntries.Set(float64(g.cacheEntries))
	m.gStreamDropped.Set(float64(g.streamDropped))

	buf := make([]byte, 0, 4096)
	name := metricsPrefix + "build_info"
	buf = telemetry.AppendPromType(buf, name, "gauge")
	buf = telemetry.AppendPromSample(buf, name, []telemetry.PromLabel{{Name: "version", Value: build}}, 1)
	for _, c := range m.reg.Counters() {
		name := metricsPrefix + c.Name() + "_total"
		buf = telemetry.AppendPromType(buf, name, "counter")
		buf = telemetry.AppendPromSample(buf, name, nil, c.Value())
		tenants, values := m.tenantSeries(c.Name())
		for i, t := range tenants {
			buf = telemetry.AppendPromSample(buf, name,
				[]telemetry.PromLabel{{Name: "tenant", Value: t}}, float64(values[i]))
		}
	}
	for _, ga := range m.reg.Gauges() {
		name := metricsPrefix + ga.Name()
		buf = telemetry.AppendPromType(buf, name, "gauge")
		buf = telemetry.AppendPromSample(buf, name, nil, ga.Value())
	}
	for _, h := range m.reg.Histograms() {
		name := metricsPrefix + h.Name()
		buf = telemetry.AppendPromType(buf, name, "histogram")
		buf = telemetry.AppendPromHistogram(buf, name, nil, h)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf)
}
