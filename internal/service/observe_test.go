package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dftmsn/internal/scenario"
	"dftmsn/internal/telemetry"
)

// streamRunBody is tinyRunBody with the live stream armed.
func streamRunBody(seed uint64) string {
	return fmt.Sprintf(`{"kind":"run","stream":true,"config":{"scheme":"OPT","sensors":6,"sinks":1,"duration_s":120,"arrival_mean_s":30,"seed":%d}}`, seed)
}

// referenceEvents runs the same scenario directly and returns its recorded
// event stream — what /stream must deliver byte-for-byte.
func referenceEvents(t *testing.T, seed uint64) []telemetry.Event {
	t.Helper()
	cfgJSON := fmt.Sprintf(`{"scheme":"OPT","sensors":6,"sinks":1,"duration_s":120,"arrival_mean_s":30,"seed":%d}`, seed)
	cfg, err := scenario.LoadConfig(strings.NewReader(cfgJSON))
	if err != nil {
		t.Fatal(err)
	}
	buf := &telemetry.Buffer{}
	cfg.Recorder = buf
	sm, err := scenario.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	return buf.Events
}

// jsonlBytes renders events to canonical JSONL trace bytes. Stream
// comparisons happen at this level: the SSE data lines are the canonical
// encoding (Time at fixed six decimals), so decoded events match the
// reference modulo that deliberate rounding — the bytes are the contract.
func jsonlBytes(evs []telemetry.Event) []byte {
	var out []byte
	for _, ev := range evs {
		out = telemetry.AppendJSON(out, ev)
		out = append(out, '\n')
	}
	return out
}

// fetchStream decodes one /stream response to completion.
func fetchStream(t *testing.T, url string, header http.Header) ([]telemetry.Event, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream GET = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	evs, done, err := telemetry.DecodeSSE(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return evs, done
}

// TestStreamEndpointReplayAndResume is the acceptance check for the live
// stream: a streamed run's SSE feed carries exactly the events a direct
// run records, replays in full from offset 0, and resumes from any offset
// (?offset= or Last-Event-ID) with no gaps and no duplicates — DecodeSSE
// verifies id contiguity as it reads.
func TestStreamEndpointReplayAndResume(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, StreamHeartbeat: 20 * time.Millisecond})
	code, st := submit(t, ts, streamRunBody(77))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	want := referenceEvents(t, 77)

	// Tail the live run from offset 0 straight through the done terminator.
	full, done := fetchStream(t, ts.URL+"/v1/jobs/"+st.ID+"/stream", nil)
	if done == nil {
		t.Fatal("stream ended without a done terminator")
	}
	if !strings.Contains(string(done), `"state":"done"`) {
		t.Fatalf("done terminator %s, want state done", done)
	}
	if !bytes.Equal(jsonlBytes(full), jsonlBytes(want)) {
		t.Fatalf("streamed %d events differ from the direct run's %d", len(full), len(want))
	}

	// Reconnect mid-stream: an offset replays exactly the suffix.
	k := len(full) / 2
	suffix, done2 := fetchStream(t, fmt.Sprintf("%s/v1/jobs/%s/stream?offset=%d", ts.URL, st.ID, k), nil)
	if done2 == nil {
		t.Fatal("resumed stream ended without a done terminator")
	}
	if !bytes.Equal(jsonlBytes(suffix), jsonlBytes(want[k:])) {
		t.Fatalf("offset %d resume: %d events, want %d", k, len(suffix), len(want)-k)
	}

	// The standard Last-Event-ID header resumes at the next event.
	h := http.Header{}
	h.Set("Last-Event-ID", fmt.Sprintf("%d", k-1))
	viaHeader, _ := fetchStream(t, ts.URL+"/v1/jobs/"+st.ID+"/stream", h)
	if !bytes.Equal(jsonlBytes(viaHeader), jsonlBytes(want[k:])) {
		t.Fatalf("Last-Event-ID resume: %d events, want %d", len(viaHeader), len(want)-k)
	}

	// A full replay after completion is still the whole identical stream.
	replay, _ := fetchStream(t, ts.URL+"/v1/jobs/"+st.ID+"/stream?offset=0", nil)
	if !bytes.Equal(jsonlBytes(replay), jsonlBytes(want)) {
		t.Fatal("post-completion replay from offset 0 differs")
	}
}

// TestStreamValidation walks the stream surface's error paths.
func TestStreamValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// stream on a non-run kind is rejected at submission.
	if code, _ := submit(t, ts, `{"kind":"sweep","stream":true,"sweep":{"experiment":"fig2"}}`); code != http.StatusBadRequest {
		t.Fatalf("streamed sweep submit = %d, want 400", code)
	}

	// An unstreamed job has no stream to tail.
	code, st := submit(t, ts, tinyRunBody(31))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	awaitTerminal(t, ts, st.ID)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unstreamed job stream GET = %d, want 404", resp.StatusCode)
	}

	// Unknown job and bad offsets.
	for path, wantCode := range map[string]int{
		"/v1/jobs/nope/stream": http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, wantCode)
		}
	}
	code2, st2 := submit(t, ts, streamRunBody(32))
	if code2 != http.StatusAccepted {
		t.Fatalf("submit = %d", code2)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st2.ID + "/stream?offset=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad offset GET = %d, want 400", resp.StatusCode)
	}
}

// TestStreamedRepeatBypassesCacheButStillCaches pins the cache interplay: a
// streamed repeat of a cached job actually simulates (a live stream needs a
// live run), while its result still lands in — and unstreamed repeats still
// come from — the content-addressed cache.
func TestStreamedRepeatBypassesCacheButStillCaches(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, st := submit(t, ts, tinyRunBody(55))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	first := awaitTerminal(t, ts, st.ID)

	code, st2 := submit(t, ts, streamRunBody(55))
	if code != http.StatusAccepted {
		t.Fatalf("streamed repeat = %d, want 202 (must not be served from cache)", code)
	}
	second := awaitTerminal(t, ts, st2.ID)
	if second.CacheHit {
		t.Fatal("streamed repeat reported a cache hit")
	}
	if string(second.Result) != string(first.Result) {
		t.Fatal("streamed repeat computed a different result")
	}

	code, st3 := submit(t, ts, tinyRunBody(55))
	if code != http.StatusOK || !st3.CacheHit {
		t.Fatalf("unstreamed repeat: code %d cacheHit %v, want 200/true", code, st3.CacheHit)
	}
}

// TestProgressEndpoint pins GET /v1/jobs/{id}/progress: a finished run
// reports its terminal kernel snapshot (done, the full horizon), a
// cache-served job reports done with no snapshot.
func TestProgressEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, ProgressEvery: time.Millisecond})
	code, st := submit(t, ts, tinyRunBody(61))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	awaitTerminal(t, ts, st.ID)

	var ps ProgressStatus
	getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/progress", &ps)
	if ps.State != stateDone || ps.Progress == nil {
		t.Fatalf("progress after completion: %+v", ps)
	}
	if !ps.Progress.Done || ps.Progress.Fraction != 1 || ps.Progress.VirtualSeconds != 120 {
		t.Fatalf("terminal snapshot %+v, want Done at the 120 s horizon", ps.Progress)
	}
	if ps.Progress.Events == 0 {
		t.Fatal("terminal snapshot counts zero events")
	}

	// The cached repeat never simulated: done, no snapshot.
	code, rep := submit(t, ts, tinyRunBody(61))
	if code != http.StatusOK {
		t.Fatalf("repeat = %d", code)
	}
	var cached ProgressStatus
	getJSON(t, ts.URL+"/v1/jobs/"+rep.ID+"/progress", &cached)
	if cached.State != stateDone || !cached.CacheHit || cached.Progress != nil {
		t.Fatalf("cached job progress: %+v", cached)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job progress = %d, want 404", resp.StatusCode)
	}
}

// TestMetricsPrometheusGolden pins the /metrics exposition format. The
// server is driven through a deterministic admission-only sequence (no
// worker ever starts, so no wall-clock histogram observation can vary) and
// the scrape must match the golden byte-for-byte: TYPE headers, _total
// suffixes, per-tenant labels, cumulative le buckets. Regenerate with
//
//	go test ./internal/service -run MetricsPrometheusGolden -update
func TestMetricsPrometheusGolden(t *testing.T) {
	savedVersion := buildVersion
	buildVersion = "golden-test-build"
	defer func() { buildVersion = savedVersion }()

	s, err := New(Options{QueueDepth: 4, TenantRatePerSec: 0.0001, TenantBurst: 1})
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): admission only, nothing runs, nothing measures wall clock.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := submit(t, ts, `{"kind":"run","tenant":"team-a","config":{"scheme":"OPT","sensors":6,"sinks":1,"duration_s":120,"seed":1}}`); code != http.StatusAccepted {
		t.Fatal("seed submission rejected")
	}
	// Same tenant again: the 1-token bucket rejects it (tenant-labelled).
	submit(t, ts, `{"kind":"run","tenant":"team-a","config":{"scheme":"OPT","sensors":6,"sinks":1,"duration_s":120,"seed":2}}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape Content-Type %q", ct)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("/metrics exposition drifted from %s; if intentional, rerun with\n"+
			"  go test ./internal/service -run MetricsPrometheusGolden -update\ngot:\n%s", path, got)
	}
}

// getJSON fetches url and decodes the JSON body into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
