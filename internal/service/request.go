package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"dftmsn/internal/scenario"
	"dftmsn/internal/sweep"
)

// Request is one job submission. Exactly one payload matches Kind: "run"
// and "chaos" carry a scenario config (the same JSON schema dftsim's
// -config flag accepts), "sweep" names a predefined experiment.
type Request struct {
	// Kind selects the job type: "run", "sweep", or "chaos".
	Kind string `json:"kind"`
	// Tenant names the admission-quota bucket ("anonymous" when empty).
	Tenant string `json:"tenant,omitempty"`
	// DeadlineMS bounds the job's execution wall-clock in milliseconds
	// (0 inherits the server default). An expired deadline cancels the job
	// cooperatively at an event boundary; a cancelled run still reports
	// the partial Result of the prefix it completed.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Stream opts a "run" job into live observation: its trace-v2 event
	// stream becomes tailable at GET /v1/jobs/{id}/stream while it runs.
	// Like the deadline and tenant it is operational, not content — it
	// never feeds the cache key — but a streamed submission bypasses the
	// cache fast path, since a live stream requires actually simulating.
	Stream bool `json:"stream,omitempty"`
	// Shards overrides the server's per-run shard grant for a "run" job
	// (0 inherits the server default). Like Stream it is operational, not
	// content: shard counts are bit-identical by construction, so the
	// field never feeds the cache key — the same config at any shard
	// count shares one cached result. Bounded by the server's core
	// budget at submission.
	Shards int `json:"shards,omitempty"`
	// Config is the scenario configuration for "run" and "chaos" jobs.
	Config json.RawMessage `json:"config,omitempty"`
	// Sweep parameterizes a "sweep" job.
	Sweep *SweepRequest `json:"sweep,omitempty"`
	// Chaos parameterizes a "chaos" job.
	Chaos *ChaosRequest `json:"chaos,omitempty"`
}

// SweepRequest selects and scales one predefined sweep experiment.
type SweepRequest struct {
	// Experiment names the sweep: fig2, density, speed, ablation,
	// lifetime, faults, churn, loss, or extensions.
	Experiment string `json:"experiment"`
	// Paper runs at the paper's full scale instead of the quick preset.
	Paper bool `json:"paper,omitempty"`
	// DurationSeconds, Runs, Sensors, and BaseSeed override the preset
	// when nonzero.
	DurationSeconds float64 `json:"duration_s,omitempty"`
	Runs            int     `json:"runs,omitempty"`
	Sensors         int     `json:"sensors,omitempty"`
	BaseSeed        uint64  `json:"base_seed,omitempty"`
}

// ChaosRequest parameterizes a chaos campaign over the request's Config.
type ChaosRequest struct {
	// Runs is the number of randomized fault-plan runs (default 200).
	Runs int `json:"runs,omitempty"`
	// Seed is the campaign master seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// MinDeliveryRatio and MaxRecoverySeconds are the resilience bounds.
	MinDeliveryRatio   float64 `json:"min_ratio,omitempty"`
	MaxRecoverySeconds float64 `json:"max_recovery_s,omitempty"`
	// ShrinkCandidateBudgetMS and ShrinkTotalBudgetMS bound minimization
	// wall-clock (milliseconds, 0 disables).
	ShrinkCandidateBudgetMS int64 `json:"shrink_candidate_budget_ms,omitempty"`
	ShrinkTotalBudgetMS     int64 `json:"shrink_total_budget_ms,omitempty"`
}

// experiments maps request names to the predefined sweep constructors.
var experiments = map[string]func(sweep.Options) (sweep.Experiment, error){
	"fig2":       sweep.Fig2,
	"density":    sweep.Density,
	"speed":      sweep.Speed,
	"ablation":   sweep.Ablation,
	"lifetime":   sweep.Lifetime,
	"faults":     sweep.Faults,
	"churn":      sweep.Churn,
	"loss":       sweep.Loss,
	"extensions": sweep.Extensions,
}

// DecodeRequest parses and validates one submission. Unknown fields are
// rejected at both levels (the envelope and the embedded scenario config)
// to catch typos before they silently change what gets simulated. For
// "run" and "chaos" it returns the fully defaulted scenario config.
func DecodeRequest(r io.Reader) (Request, scenario.Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return Request{}, scenario.Config{}, fmt.Errorf("service: request: %w", err)
	}
	if req.Tenant == "" {
		req.Tenant = "anonymous"
	}
	if req.DeadlineMS < 0 {
		return Request{}, scenario.Config{}, fmt.Errorf("service: negative deadline_ms %d", req.DeadlineMS)
	}
	if req.Stream && req.Kind != "run" {
		return Request{}, scenario.Config{}, fmt.Errorf("service: only run jobs can stream (kind %q)", req.Kind)
	}
	if req.Shards < 0 {
		return Request{}, scenario.Config{}, fmt.Errorf("service: negative shards %d", req.Shards)
	}
	if req.Shards != 0 && req.Kind != "run" {
		return Request{}, scenario.Config{}, fmt.Errorf("service: only run jobs take a shard override (kind %q)", req.Kind)
	}
	switch req.Kind {
	case "run", "chaos":
		if len(req.Config) == 0 {
			return Request{}, scenario.Config{}, fmt.Errorf("service: %q job needs a config", req.Kind)
		}
		if req.Kind == "run" && (req.Sweep != nil || req.Chaos != nil) {
			return Request{}, scenario.Config{}, fmt.Errorf("service: run job carries sweep/chaos parameters")
		}
		if req.Kind == "chaos" && req.Sweep != nil {
			return Request{}, scenario.Config{}, fmt.Errorf("service: chaos job carries sweep parameters")
		}
		cfg, err := scenario.LoadConfig(bytes.NewReader(req.Config))
		if err != nil {
			return Request{}, scenario.Config{}, err
		}
		return req, cfg, nil
	case "sweep":
		if req.Sweep == nil {
			return Request{}, scenario.Config{}, fmt.Errorf("service: sweep job needs sweep parameters")
		}
		if len(req.Config) != 0 || req.Chaos != nil {
			return Request{}, scenario.Config{}, fmt.Errorf("service: sweep job carries config/chaos parameters")
		}
		if _, ok := experiments[req.Sweep.Experiment]; !ok {
			return Request{}, scenario.Config{}, fmt.Errorf("service: unknown experiment %q", req.Sweep.Experiment)
		}
		return req, scenario.Config{}, nil
	default:
		return Request{}, scenario.Config{}, fmt.Errorf("service: unknown job kind %q", req.Kind)
	}
}

// sweepOptions resolves a SweepRequest to concrete sweep options.
func sweepOptions(sr *SweepRequest) sweep.Options {
	o := sweep.QuickOptions()
	if sr.Paper {
		o = sweep.PaperOptions()
	}
	if sr.DurationSeconds > 0 {
		o.DurationSeconds = sr.DurationSeconds
	}
	if sr.Runs > 0 {
		o.Runs = sr.Runs
	}
	if sr.Sensors > 0 {
		o.Sensors = sr.Sensors
	}
	if sr.BaseSeed != 0 {
		o.BaseSeed = sr.BaseSeed
	}
	return o
}

// chaosDefaults resolves a nil-able ChaosRequest to its defaulted value.
func chaosDefaults(cr *ChaosRequest) ChaosRequest {
	var c ChaosRequest
	if cr != nil {
		c = *cr
	}
	if c.Runs <= 0 {
		c.Runs = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// requestKey computes the content address of a request's result. For runs
// the identity is the canonical config encoding plus seed (CacheKey); for
// sweeps and chaos it is the fully defaulted parameter set plus — for
// chaos — the canonical base config, so two spellings of the same job
// (explicit defaults vs. omitted fields) share one key. The deadline and
// tenant are operational, not content, and never feed the key.
func requestKey(req Request, cfg scenario.Config) (string, error) {
	switch req.Kind {
	case "run":
		return CacheKey(cfg)
	case "sweep":
		o := sweepOptions(req.Sweep)
		ident := fmt.Sprintf("experiment=%s duration=%g runs=%d sensors=%d seed=%d",
			req.Sweep.Experiment, o.DurationSeconds, o.Runs, o.Sensors, o.BaseSeed)
		return keyOf("sweep", []byte(ident)), nil
	case "chaos":
		blob, err := scenario.EncodeConfig(cfg)
		if err != nil {
			return "", err
		}
		c := chaosDefaults(req.Chaos)
		ident := fmt.Sprintf("runs=%d seed=%d min_ratio=%g max_recovery=%g cand_ms=%d total_ms=%d",
			c.Runs, c.Seed, c.MinDeliveryRatio, c.MaxRecoverySeconds,
			c.ShrinkCandidateBudgetMS, c.ShrinkTotalBudgetMS)
		return keyOf("chaos", blob, []byte(ident)), nil
	}
	return "", fmt.Errorf("service: unknown job kind %q", req.Kind)
}

// deadlineOf resolves the request deadline against the server defaults.
func deadlineOf(req Request, def, max time.Duration) time.Duration {
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if d == 0 {
		d = def
	}
	if max > 0 && (d == 0 || d > max) {
		d = max
	}
	return d
}
