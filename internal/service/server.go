package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dftmsn/internal/chaos"
	"dftmsn/internal/scenario"
	"dftmsn/internal/sim"
	"dftmsn/internal/sweep"
	"dftmsn/internal/telemetry"
)

// maxRequestBytes bounds a submission body; configs are small.
const maxRequestBytes = 4 << 20

// Options configures a Server. The zero value is usable: memory-only (no
// journal), unlimited tenants, no default deadline.
type Options struct {
	// QueueDepth bounds the admission queue (default 64). A full queue
	// rejects submissions with 429 and a Retry-After hint.
	QueueDepth int
	// Workers is the server's core budget (default GOMAXPROCS). The
	// execution pool is sized at Workers / RunShards so that concurrent
	// jobs times shards-per-job never oversubscribes the budget.
	Workers int
	// RunShards is the default intra-run shard count handed to each
	// simulation (default 1: every core goes to job concurrency, the
	// pre-budget behaviour). A request may override it per job with the
	// runtime-only "shards" field, bounded by the budget.
	RunShards int
	// MaxRetries bounds re-execution of a failing job before it is
	// quarantined (default 2; retries only failures and panics, never
	// deadline cancellations).
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff between retries
	// (default 50ms; each retry doubles it and adds up to 100% jitter).
	RetryBaseDelay time.Duration
	// TenantRatePerSec and TenantBurst shape the per-tenant admission
	// token bucket (rate 0 disables quotas; burst default 8).
	TenantRatePerSec float64
	TenantBurst      int
	// DefaultDeadline applies to jobs that do not set one (0 = none);
	// MaxDeadline caps every job's deadline (0 = no cap).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// JournalPath is the crash-safe job journal ("" = memory only). On
	// start the journal is replayed: finished results warm the cache and
	// unfinished jobs are re-enqueued.
	JournalPath string
	// StateDir holds chaos-campaign state files so an interrupted
	// campaign resumes from its completed runs instead of restarting
	// ("" = campaigns run without state files).
	StateDir string
	// Logger receives structured operational logs, every line carrying
	// the job id as a correlation attribute (nil discards them).
	Logger *slog.Logger
	// ProgressEvery throttles how often a running job refreshes its
	// progress snapshot (0 = the scenario default, 1s of wall clock).
	ProgressEvery time.Duration
	// StreamHeartbeat is the idle interval between SSE comment
	// heartbeats on /stream (default 15s).
	StreamHeartbeat time.Duration
	// StreamMaxEvents caps a streamed job's retained in-memory event log
	// (0 = unbounded); events beyond the cap are counted, not stored.
	StreamMaxEvents uint64
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RunShards <= 0 {
		o.RunShards = 1
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 50 * time.Millisecond
	}
	if o.TenantBurst <= 0 {
		o.TenantBurst = 8
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.StreamHeartbeat <= 0 {
		o.StreamHeartbeat = 15 * time.Second
	}
	return o
}

// job is one unit of service work and its mutable lifecycle state.
type job struct {
	id     string
	req    Request
	cfg    scenario.Config // run/chaos jobs
	kind   string
	tenant string
	key    string

	deadline time.Duration // wall-clock budget; armed when execution starts
	enqueued time.Time     // when it entered the queue (feeds queue_wait_seconds)

	// tee is the live event stream for jobs submitted with "stream":
	// true; readers page it by offset, so reconnects replay any suffix.
	// Nil for unstreamed jobs. Set before the job is visible, never
	// reassigned.
	tee *telemetry.StreamTee

	mu          sync.Mutex
	state       string
	attempts    int
	errMsg      string
	cacheHit    bool
	payload     json.RawMessage
	progress    scenario.Progress // latest kernel snapshot ("run" jobs)
	hasProgress bool
	interrupted atomic.Bool // shutdown kill fired while it ran
	started     atomic.Int64
}

func (j *job) stateNow() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *job) storeProgress(p scenario.Progress) {
	j.mu.Lock()
	j.progress = p
	j.hasProgress = true
	j.mu.Unlock()
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Tenant   string          `json:"tenant"`
	Key      string          `json:"key"`
	State    string          `json:"state"`
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, Kind: j.kind, Tenant: j.tenant, Key: j.key,
		State: j.state, Attempts: j.attempts, Error: j.errMsg,
		CacheHit: j.cacheHit, Result: j.payload,
	}
}

// Server is the scenario service: admission control in front, the bounded
// worker pool behind, with the journal recording every state transition.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	cache   *Cache
	limiter *tenantLimiter
	journal *journal
	budget  *sweep.CoreBudget

	queue chan *job
	depth atomic.Int64 // queued, not yet picked up

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int

	running  atomic.Int64
	draining atomic.Bool

	sm  *serviceMetrics
	log *slog.Logger

	killCh   chan struct{} // closed when the drain grace expires
	stopCh   chan struct{} // closed to stop the workers
	stopOnce sync.Once
	killOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Server: it replays the journal (warming the cache and
// collecting unfinished jobs), opens it for appending, and re-enqueues
// everything the last process left behind. Call Start to launch the
// workers and Handler to mount the HTTP API.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	replayed, err := replayJournal(opts.JournalPath)
	if err != nil {
		return nil, err
	}
	jnl, err := openJournal(opts.JournalPath)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		cache:   NewCache(),
		limiter: newTenantLimiter(opts.TenantRatePerSec, opts.TenantBurst),
		journal: jnl,
		budget:  sweep.NewCoreBudget(opts.Workers, opts.RunShards),
		jobs:    make(map[string]*job),
		sm:      newServiceMetrics(),
		log:     opts.Logger,
		killCh:  make(chan struct{}),
		stopCh:  make(chan struct{}),
	}

	var resumable []*job
	for _, r := range replayed {
		j := &job{
			id: r.ID, req: r.Request, kind: r.Kind, tenant: r.Tenant,
			key: r.Key, state: r.State, errMsg: r.Error, cacheHit: r.Cached,
			payload: r.Payload,
		}
		if terminalState(r.State) {
			if r.State == stateDone && !r.Cached {
				s.cache.Put(r.Key, r.Payload)
			}
		} else {
			// The last process never finished this job; rebuild its
			// config from the journaled submission and run it again. The
			// work lost to the crash is re-derived deterministically (and
			// chaos campaigns skip their already-recorded runs via their
			// state file), so the eventual verdict is the one an
			// uninterrupted server would have reached.
			req := r.Request
			var cfg scenario.Config
			if req.Kind == "run" || req.Kind == "chaos" {
				c, err := scenario.DecodeConfig(req.Config)
				if err != nil {
					return nil, fmt.Errorf("service: journal replay of job %s: %w", r.ID, err)
				}
				cfg = c
			}
			j.cfg = cfg
			j.state = stateQueued
			j.deadline = deadlineOf(req, opts.DefaultDeadline, opts.MaxDeadline)
			if req.Stream && req.Kind == "run" {
				j.tee = telemetry.NewStreamTee(opts.StreamMaxEvents)
			}
			resumable = append(resumable, j)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	s.nextID = len(replayed) + 1

	// Capacity covers the configured depth (with slack for the admission
	// race) plus every resumed job, so re-enqueueing can never block.
	s.queue = make(chan *job, 2*opts.QueueDepth+len(resumable))
	for _, j := range resumable {
		j.enqueued = time.Now()
		s.depth.Add(1)
		s.queue <- j
		s.sm.count("jobs_resumed")
		s.log.Info("job resumed from journal", "job", j.id, "kind", j.kind, "tenant", j.tenant)
	}
	s.buildMux()
	return s, nil
}

// Start launches the worker pool. The pool holds budget.Workers() workers —
// the core budget divided by the per-run shard default — so concurrent jobs
// at their default grant exactly fill the budget without blocking on it.
func (s *Server) Start() {
	for i := 0; i < s.budget.Workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: submissions are refused immediately, then
// running and queued work gets up to grace to finish. Past grace every
// running job is cancelled cooperatively at its next event boundary and
// journaled "interrupted" — chaos campaigns checkpoint through their state
// files as they go, so the next process resumes instead of restarting.
func (s *Server) Shutdown(grace time.Duration) {
	s.draining.Store(true)
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		if s.depth.Load() == 0 && s.running.Load() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.killOnce.Do(func() { close(s.killCh) })
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.wg.Wait()
	s.journal.close()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		default:
		}
		select {
		case j := <-s.queue:
			s.depth.Add(-1)
			s.execute(j)
		case <-s.stopCh:
			return
		}
	}
}

// probe is the cooperative cancellation hook a job simulates under: the
// shutdown kill switch and the job's wall-clock deadline, whichever fires
// first. It is consulted between events only, so firing it never perturbs
// the completed prefix.
func (s *Server) probe(j *job) func() bool {
	return func() bool {
		select {
		case <-s.killCh:
			j.interrupted.Store(true)
			return true
		default:
		}
		if j.deadline > 0 {
			start := time.Unix(0, j.started.Load())
			return time.Since(start) > j.deadline
		}
		return false
	}
}

// execute runs one job to a terminal state: panic-isolated attempts with
// exponential backoff, deadline cancellation, shutdown interruption, and
// quarantine when the retry budget is spent.
func (s *Server) execute(j *job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	if !j.enqueued.IsZero() {
		s.sm.observeQueueWait(time.Since(j.enqueued))
	}
	j.started.Store(time.Now().UnixNano())
	defer func() {
		s.sm.observeRun(time.Since(time.Unix(0, j.started.Load())))
		if j.tee != nil {
			// Closed after the terminal transition, so /stream's done
			// terminator always reads the settled state.
			j.tee.Close()
		}
	}()
	for attempt := 1; ; attempt++ {
		s.transition(j, stateRunning, func(e *journalEntry) { e.Attempt = attempt })
		j.mu.Lock()
		j.attempts = attempt
		j.mu.Unlock()

		err := sweep.Guard(func() error { return s.runJob(j) })
		switch {
		case err == nil:
			s.cache.Put(j.key, j.snapshotPayload())
			s.transition(j, stateDone, func(e *journalEntry) { e.Payload = j.snapshotPayload() })
			s.sm.count("jobs_done")
			return
		case errors.Is(err, sim.ErrCancelled):
			if j.interrupted.Load() {
				// Shutdown, not deadline: the journal keeps the job
				// resumable and the next process picks it up.
				s.transition(j, stateInterrupted, func(e *journalEntry) { e.Error = err.Error() })
				s.sm.count("jobs_interrupted")
				return
			}
			s.transition(j, stateCancelled, func(e *journalEntry) {
				e.Error = err.Error()
				e.Payload = j.snapshotPayload() // the partial prefix result
			})
			s.sm.count("jobs_cancelled")
			return
		case attempt > s.opts.MaxRetries:
			s.transition(j, stateQuarantined, func(e *journalEntry) { e.Error = err.Error() })
			s.sm.count("jobs_quarantined")
			return
		}
		s.setError(j, err)
		s.sm.count("retries")
		s.log.Warn("job attempt failed, retrying", "job", j.id, "attempt", attempt, "error", err.Error())
		if !s.backoff(attempt) {
			s.transition(j, stateInterrupted, func(e *journalEntry) { e.Error = "interrupted during retry backoff" })
			s.sm.count("jobs_interrupted")
			return
		}
	}
}

// backoff sleeps the exponential retry delay with full jitter; it returns
// false when the shutdown kill switch fired instead.
func (s *Server) backoff(attempt int) bool {
	d := s.opts.RetryBaseDelay << (attempt - 1)
	d += time.Duration(rand.Int64N(int64(d) + 1))
	select {
	case <-time.After(d):
		return true
	case <-s.killCh:
		return false
	}
}

// runJob executes the job's simulation work. On deadline cancellation the
// partial result is stored before the error propagates.
func (s *Server) runJob(j *job) error {
	probe := s.probe(j)
	switch j.kind {
	case "run":
		cfg := j.cfg
		cfg.Cancel = probe
		cfg.OnProgress = j.storeProgress
		cfg.ProgressEvery = s.opts.ProgressEvery
		// Take this run's shard grant from the shared core budget: the
		// request's override when set, the server default otherwise. The
		// grant is runtime-only — results are bit-identical at any count —
		// so blocking here for a large override never changes an answer,
		// only when it arrives.
		shards := s.budget.Acquire(j.req.Shards)
		defer s.budget.Release(shards)
		cfg.Shards = shards
		if j.tee != nil {
			// A retried attempt re-records the same deterministic event
			// sequence; Reset lets readers holding an offset resume
			// seamlessly once the replay passes them again.
			j.tee.Reset()
			if cfg.Recorder != nil {
				cfg.Recorder = telemetry.Multi{cfg.Recorder, j.tee}
			} else {
				cfg.Recorder = j.tee
			}
		}
		sm, err := scenario.New(cfg)
		if err != nil {
			return err
		}
		res, err := sm.Run()
		if err != nil {
			if errors.Is(err, sim.ErrCancelled) {
				j.storePayload(mustJSON(res))
			}
			return err
		}
		j.storePayload(mustJSON(res))
		return nil
	case "sweep":
		build := experiments[j.req.Sweep.Experiment]
		exp, err := build(sweepOptions(j.req.Sweep))
		if err != nil {
			return err
		}
		exp.Cancel = probe
		exp.Budget = s.budget
		table, err := exp.Run(0)
		if err != nil {
			return err
		}
		payload, err := table.JSON()
		if err != nil {
			return err
		}
		j.storePayload(payload)
		return nil
	case "chaos":
		cr := chaosDefaults(j.req.Chaos)
		c := chaos.Campaign{
			Base:                  j.cfg,
			Runs:                  cr.Runs,
			Seed:                  cr.Seed,
			MinDeliveryRatio:      cr.MinDeliveryRatio,
			MaxRecoverySeconds:    cr.MaxRecoverySeconds,
			ShrinkCandidateBudget: time.Duration(cr.ShrinkCandidateBudgetMS) * time.Millisecond,
			ShrinkTotalBudget:     time.Duration(cr.ShrinkTotalBudgetMS) * time.Millisecond,
			Cancel:                probe,
			Budget:                s.budget,
		}
		stateFile := ""
		if s.opts.StateDir != "" {
			stateFile = filepath.Join(s.opts.StateDir, "chaos-"+j.key[:16]+".jsonl")
			c.StateFile = stateFile
			c.Resume = true
		}
		sum, err := c.Run()
		if err != nil {
			if errors.Is(err, sim.ErrCancelled) {
				j.storePayload(mustJSON(sum))
			}
			return err
		}
		j.storePayload(mustJSON(sum))
		if stateFile != "" {
			os.Remove(stateFile) // campaign finished; the cache now owns the verdict
		}
		return nil
	}
	return fmt.Errorf("service: unknown job kind %q", j.kind)
}

func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("service: marshal result: %v", err))
	}
	return b
}

func (j *job) storePayload(p json.RawMessage) {
	j.mu.Lock()
	j.payload = p
	j.mu.Unlock()
}

func (j *job) snapshotPayload() json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.payload
}

func (s *Server) setError(j *job, err error) {
	j.mu.Lock()
	j.errMsg = err.Error()
	j.mu.Unlock()
}

// transition journals a job state change (fsync'd before the in-memory
// state flips, write-ahead) and then applies it.
func (s *Server) transition(j *job, state string, decorate func(*journalEntry)) {
	e := journalEntry{Job: j.id, State: state}
	if decorate != nil {
		decorate(&e)
	}
	if err := s.journal.append(e); err != nil {
		// The journal is the durability story; losing it mid-flight is
		// not recoverable in-process. Surface loudly on the job.
		j.mu.Lock()
		j.errMsg = err.Error()
		j.mu.Unlock()
	}
	j.mu.Lock()
	j.state = state
	if e.Error != "" {
		j.errMsg = e.Error
	}
	j.mu.Unlock()
	s.log.Info("job state", "job", j.id, "state", state, "attempt", e.Attempt, "error", e.Error)
}

// newJob mints a job with a unique, journal-stable ID.
func (s *Server) newJob(req Request, cfg scenario.Config, key string) *job {
	s.mu.Lock()
	id := fmt.Sprintf("j%06d-%s", s.nextID, key[:8])
	s.nextID++
	s.mu.Unlock()
	return &job{
		id: id, req: req, cfg: cfg, kind: req.Kind, tenant: req.Tenant,
		key: key, state: stateQueued,
		deadline: deadlineOf(req, s.opts.DefaultDeadline, s.opts.MaxDeadline),
	}
}

func (s *Server) registerJob(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
}

func (s *Server) buildMux() {
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/jobs", s.handleSubmit)
	m.HandleFunc("GET /v1/jobs", s.handleList)
	m.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	m.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	m.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	m.HandleFunc("GET /readyz", s.handleReady)
	m.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = m
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	req, cfg, err := DecodeRequest(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Shards > s.budget.Total() {
		http.Error(w, fmt.Sprintf("service: shards %d exceeds core budget %d", req.Shards, s.budget.Total()), http.StatusBadRequest)
		return
	}
	key, err := requestKey(req, cfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if ok, retry := s.limiter.admit(req.Tenant); !ok {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retry.Seconds())))
		http.Error(w, "tenant quota exceeded", http.StatusTooManyRequests)
		s.sm.countTenant("rejected_quota", req.Tenant)
		return
	}
	s.sm.countTenant("jobs_submitted", req.Tenant)

	// A repeat of a finished job is served from the content-addressed
	// cache: the job is born done, with zero simulation events. A streamed
	// submission skips the fast path — a live stream only exists if the
	// simulation actually runs (its result still lands in the cache).
	if payload, ok := s.cache.Get(key); ok && !req.Stream {
		j := s.newJob(req, cfg, key)
		j.state = stateDone
		j.cacheHit = true
		j.payload = payload
		s.registerJob(j)
		s.journal.append(journalEntry{
			Job: j.id, State: stateDone, Kind: j.kind, Tenant: j.tenant,
			Key: key, Cached: true, // no payload: the original entry owns it
		})
		s.sm.countTenant("cache_served", req.Tenant)
		s.log.Info("job served from cache", "job", j.id, "kind", j.kind, "tenant", j.tenant, "key", key)
		s.respond(w, http.StatusOK, j.status())
		return
	}

	if s.depth.Add(1) > int64(s.opts.QueueDepth) {
		s.depth.Add(-1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "queue full", http.StatusTooManyRequests)
		s.sm.count("rejected_queue_full")
		return
	}
	j := s.newJob(req, cfg, key)
	if req.Stream {
		j.tee = telemetry.NewStreamTee(s.opts.StreamMaxEvents)
	}
	j.enqueued = time.Now()
	s.registerJob(j)
	s.log.Info("job accepted", "job", j.id, "kind", j.kind, "tenant", j.tenant, "key", key, "stream", req.Stream)
	// Write-ahead: the submission reaches stable storage before the job
	// can start, so a crash never leaves a running job the journal has
	// never heard of.
	s.journal.append(journalEntry{
		Job: j.id, State: stateQueued, Kind: j.kind, Tenant: j.tenant,
		Key: key, Request: &req,
	})
	s.queue <- j
	s.respond(w, http.StatusAccepted, j.status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	s.respond(w, http.StatusOK, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		st := s.jobs[id].status()
		st.Result = nil // summaries only; fetch the job for its payload
		out = append(out, st)
	}
	s.mu.Unlock()
	s.respond(w, http.StatusOK, out)
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the Prometheus text exposition: the sharded health
// counters (with per-tenant series on the admission families), queue and
// cache gauges, and the queue-wait / run-duration histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	entries, hits, misses := s.cache.Stats()
	var dropped uint64
	s.mu.Lock()
	for _, id := range s.order {
		if t := s.jobs[id].tee; t != nil {
			dropped += t.Dropped() + t.Truncated()
		}
	}
	s.mu.Unlock()
	s.sm.render(w, gaugeSnapshot{
		queueDepth:    s.depth.Load(),
		queueCapacity: s.opts.QueueDepth,
		running:       s.running.Load(),
		cacheEntries:  entries,
		cacheHits:     hits,
		cacheMisses:   misses,
		streamDropped: dropped,
	}, buildVersion)
}

func (s *Server) respond(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
