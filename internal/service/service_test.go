package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dftmsn/internal/scenario"
	"dftmsn/internal/sweep"
)

// poisonExperiment is a sweep whose every run panics — the poison-job
// fixture for the quarantine test.
func poisonExperiment(sweep.Options) (sweep.Experiment, error) {
	return sweep.Experiment{
		Name: "poison", XLabel: "x", Xs: []float64{1}, Runs: 1,
		Variants: []sweep.Variant{{
			Name:  "P",
			Build: func(float64) (scenario.Config, error) { panic("poison build") },
		}},
	}, nil
}

// tinyRunBody is a fast scenario submission (finishes in well under a
// second) for the happy-path tests.
func tinyRunBody(seed uint64) string {
	return fmt.Sprintf(`{"kind":"run","config":{"scheme":"OPT","sensors":6,"sinks":1,"duration_s":120,"arrival_mean_s":30,"seed":%d}}`, seed)
}

// longRunBody is a scenario big enough that a millisecond deadline always
// cancels it long before it finishes.
func longRunBody() string {
	return `{"kind":"run","deadline_ms":1,"config":{"scheme":"OPT","sensors":30,"sinks":2,"duration_s":50000,"arrival_mean_s":30,"seed":5}}`
}

// newTestServer builds, starts, and tears down a server around opts.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(0)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// awaitTerminal polls a job until it reaches a terminal state.
func awaitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if terminalState(st.State) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// promValue scrapes /metrics and extracts one unlabelled sample from the
// Prometheus text exposition.
func promValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in scrape:\n%s", name, body)
	return 0
}

// TestRunJobEndToEnd submits a run, waits for its result, resubmits the
// identical request, and requires the repeat to be served from the cache —
// same bytes, zero simulation (the job is born done).
func TestRunJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	code, st := submit(t, ts, tinyRunBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	first := awaitTerminal(t, ts, st.ID)
	if first.State != stateDone || first.CacheHit {
		t.Fatalf("first run: state %q cacheHit %v, want done/false (err %q)", first.State, first.CacheHit, first.Error)
	}
	var res scenario.Result
	if err := json.Unmarshal(first.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 || res.Delivery.Generated == 0 {
		t.Fatalf("empty result payload: %+v", res)
	}

	code, repeat := submit(t, ts, tinyRunBody(1))
	if code != http.StatusOK {
		t.Fatalf("cached submit = %d, want 200", code)
	}
	if repeat.State != stateDone || !repeat.CacheHit {
		t.Fatalf("repeat: state %q cacheHit %v, want done/true", repeat.State, repeat.CacheHit)
	}
	if !bytes.Equal(repeat.Result, first.Result) {
		t.Fatal("cached payload differs from the computed one")
	}
	if repeat.Key != first.Key {
		t.Fatalf("keys differ: %s vs %s", repeat.Key, first.Key)
	}

	// A different seed is different content: no hit.
	code, other := submit(t, ts, tinyRunBody(2))
	if code != http.StatusAccepted || other.Key == first.Key {
		t.Fatalf("different seed: code %d key equal=%v", code, other.Key == first.Key)
	}
}

// TestDeadlineCancelsJobWithPartialResult pins the deadline path: the job
// ends "cancelled" (a terminal state, never retried) and still carries the
// partial Result of the event prefix it completed.
func TestDeadlineCancelsJobWithPartialResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, st := submit(t, ts, longRunBody())
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := awaitTerminal(t, ts, st.ID)
	if final.State != stateCancelled {
		t.Fatalf("state %q, want cancelled (err %q)", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "cancelled") {
		t.Fatalf("error %q does not mention cancellation", final.Error)
	}
	if final.Attempts != 1 {
		t.Fatalf("cancelled job was attempted %d times, want 1 (no retry)", final.Attempts)
	}
	var res scenario.Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.SimSeconds >= 50000 {
		t.Fatalf("cancelled job simulated the whole horizon (%.0f s)", res.SimSeconds)
	}
}

// TestQueueBackpressure fills the admission queue (no workers draining it)
// and requires the overflow submission to bounce with 429 + Retry-After.
func TestQueueBackpressure(t *testing.T) {
	s, err := New(Options{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): the queue cannot drain.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := submit(t, ts, tinyRunBody(1)); code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tinyRunBody(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
}

// TestTenantQuota pins the per-tenant token bucket: burst spends, then 429
// with a Retry-After derived from the refill rate; another tenant is
// unaffected.
func TestTenantQuota(t *testing.T) {
	s, err := New(Options{TenantRatePerSec: 0.001, TenantBurst: 1, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := func(tenant string, seed int) string {
		return fmt.Sprintf(`{"kind":"run","tenant":%q,"config":{"scheme":"OPT","sensors":6,"sinks":1,"duration_s":120,"seed":%d}}`, tenant, seed)
	}
	if code, _ := submit(t, ts, body("team-a", 1)); code != http.StatusAccepted {
		t.Fatal("first team-a submission rejected")
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body("team-a", 2)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("second team-a submission: %d (Retry-After %q), want 429 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code, _ := submit(t, ts, body("team-b", 3)); code != http.StatusAccepted {
		t.Fatal("team-b throttled by team-a's bucket")
	}
}

// TestBadRequestsRejected walks the validation surface.
func TestBadRequestsRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for name, body := range map[string]string{
		"unknown kind":      `{"kind":"explode"}`,
		"unknown field":     `{"kind":"run","conf":{}}`,
		"run without cfg":   `{"kind":"run"}`,
		"bad scheme":        `{"kind":"run","config":{"scheme":"WAT"}}`,
		"unknown cfg field": `{"kind":"run","config":{"scheme":"OPT","sensor":3}}`,
		"unknown sweep":     `{"kind":"sweep","sweep":{"experiment":"fig99"}}`,
		"negative deadline": `{"kind":"run","deadline_ms":-5,"config":{"scheme":"OPT"}}`,
		"not json":          `hello`,
	} {
		if code, _ := submit(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", name, code)
		}
	}
}

// TestPanicQuarantine submits a sweep job rigged to panic via a poisoned
// experiment and requires bounded retries then quarantine — the service
// survives, and the next job still runs.
func TestPanicQuarantine(t *testing.T) {
	experiments["poison-test"] = poisonExperiment
	defer delete(experiments, "poison-test")

	s, ts := newTestServer(t, Options{Workers: 1, MaxRetries: 2, RetryBaseDelay: time.Millisecond})
	code, st := submit(t, ts, `{"kind":"sweep","sweep":{"experiment":"poison-test"}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := awaitTerminal(t, ts, st.ID)
	if final.State != stateQuarantined {
		t.Fatalf("state %q, want quarantined (err %q)", final.State, final.Error)
	}
	if final.Attempts != 3 {
		t.Fatalf("poison job attempted %d times, want 1 + 2 retries", final.Attempts)
	}
	if !strings.Contains(final.Error, "panic") {
		t.Fatalf("error %q does not surface the panic", final.Error)
	}

	// The pool survived the panics: a healthy job still completes.
	code, st = submit(t, ts, tinyRunBody(9))
	if code != http.StatusAccepted {
		t.Fatalf("post-quarantine submit = %d", code)
	}
	if got := awaitTerminal(t, ts, st.ID); got.State != stateDone {
		t.Fatalf("post-quarantine job state %q, want done", got.State)
	}
	if q, r := promValue(t, ts, "dftserve_jobs_quarantined_total"), promValue(t, ts, "dftserve_retries_total"); q != 1 || r != 2 {
		t.Fatalf("metrics: quarantined %v retries %v, want 1 and 2", q, r)
	}
	_ = s
}

// TestHealthAndDrain pins the probe endpoints across a graceful drain.
func TestHealthAndDrain(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if get("/healthz") != 200 || get("/readyz") != 200 {
		t.Fatal("fresh server not healthy/ready")
	}
	s.Shutdown(time.Second)
	if get("/healthz") != 200 {
		t.Fatal("healthz must stay 200 while the process lives")
	}
	if get("/readyz") != http.StatusServiceUnavailable {
		t.Fatal("readyz must go 503 once draining")
	}
	if code, _ := submit(t, ts, tinyRunBody(1)); code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", code)
	}
}

// TestJournalReplayResumesAndWarmsCache is the in-process crash-recovery
// check (the kill -9 version lives in the cmd/dftserve soak test): a job
// journaled "queued" by a dead server is re-enqueued and finished by the
// next one, and the finished payload then serves repeats from the cache
// across yet another restart.
func TestJournalReplayResumesAndWarmsCache(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "journal.jsonl")

	// First life: accept the job but die (no workers) before running it.
	s1, err := New(Options{JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, st := submit(t, ts1, tinyRunBody(4))
	ts1.Close()
	s1.journal.close()
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	// Second life: the replay re-enqueues and the job completes.
	s2, ts2 := newTestServer(t, Options{JournalPath: jp, Workers: 1})
	final := awaitTerminal(t, ts2, st.ID)
	if final.State != stateDone {
		t.Fatalf("resumed job state %q, want done (err %q)", final.State, final.Error)
	}
	if v := promValue(t, ts2, "dftserve_jobs_resumed_total"); v != 1 {
		t.Fatalf("jobs_resumed = %v, want 1", v)
	}
	s2.Shutdown(5 * time.Second)

	// Third life: the journal warms the cache; the repeat never simulates.
	_, ts3 := newTestServer(t, Options{JournalPath: jp, Workers: 1})
	code, repeat := submit(t, ts3, tinyRunBody(4))
	if code != http.StatusOK || !repeat.CacheHit {
		t.Fatalf("post-restart repeat: code %d cacheHit %v, want 200/true", code, repeat.CacheHit)
	}
	if !bytes.Equal(repeat.Result, final.Result) {
		t.Fatal("cache-served payload differs across restart")
	}
}

// TestInterruptedChaosResumesToIdenticalVerdict drives the acceptance
// claim end to end in-process: a chaos campaign interrupted by shutdown
// resumes on the next server from its state file and reaches a summary
// byte-identical to an uninterrupted campaign's.
func TestInterruptedChaosResumesToIdenticalVerdict(t *testing.T) {
	chaosBody := `{"kind":"chaos","chaos":{"runs":12,"seed":5},"config":{"scheme":"OPT","sensors":12,"sinks":2,"duration_s":400,"arrival_mean_s":40}}`

	// Reference: uninterrupted campaign.
	_, tsRef := newTestServer(t, Options{Workers: 1, StateDir: t.TempDir()})
	code, st := submit(t, tsRef, chaosBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	want := awaitTerminal(t, tsRef, st.ID)
	if want.State != stateDone {
		t.Fatalf("reference campaign state %q (err %q)", want.State, want.Error)
	}

	// Interrupted: shut down almost immediately, mid-campaign.
	dir := t.TempDir()
	jp := filepath.Join(dir, "journal.jsonl")
	s1, err := New(Options{Workers: 1, JournalPath: jp, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	code, st = submit(t, ts1, chaosBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	time.Sleep(30 * time.Millisecond) // let it get partway
	s1.Shutdown(0)                    // zero grace: kill switch fires at once
	ts1.Close()

	// Resume on a fresh server over the same journal and state dir.
	_, ts2 := newTestServer(t, Options{Workers: 1, JournalPath: jp, StateDir: dir})
	got := awaitTerminal(t, ts2, st.ID)
	if got.State != stateDone {
		t.Fatalf("resumed campaign state %q (err %q)", got.State, got.Error)
	}
	if !bytes.Equal(got.Result, want.Result) {
		t.Fatalf("resumed campaign verdict differs from uninterrupted:\n%s\n---\n%s", got.Result, want.Result)
	}
}
