package service

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// tinyShardedRunBody is tinyRunBody with a runtime-only shard override.
func tinyShardedRunBody(seed uint64, shards int) string {
	return fmt.Sprintf(`{"kind":"run","shards":%d,"config":{"scheme":"OPT","sensors":6,"sinks":1,"duration_s":120,"arrival_mean_s":30,"seed":%d}}`, shards, seed)
}

// TestRequestKeyIgnoresShards pins the cache-key contract for the shards
// field: like stream and deadline it is operational, so the same config with
// and without a shard override must address the same cached result.
func TestRequestKeyIgnoresShards(t *testing.T) {
	req1, cfg1, err := DecodeRequest(strings.NewReader(tinyRunBody(7)))
	if err != nil {
		t.Fatal(err)
	}
	req2, cfg2, err := DecodeRequest(strings.NewReader(tinyShardedRunBody(7, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if req2.Shards != 3 {
		t.Fatalf("decoded shards = %d, want 3", req2.Shards)
	}
	k1, err := requestKey(req1, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := requestKey(req2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("shard override changed the cache key: %s vs %s", k1, k2)
	}
}

// TestShardsValidation pins the request-surface rules: negative overrides,
// overrides on non-run kinds, and overrides beyond the server's core budget
// are all rejected at submission.
func TestShardsValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, RunShards: 1})
	for name, body := range map[string]string{
		"negative":    `{"kind":"run","shards":-1,"config":{"scheme":"OPT","sensors":6,"sinks":1,"duration_s":120,"arrival_mean_s":30}}`,
		"sweep-kind":  `{"kind":"sweep","shards":2,"sweep":{"experiment":"fig2"}}`,
		"chaos-kind":  `{"kind":"chaos","shards":2,"config":{"scheme":"OPT","sensors":6,"sinks":1,"duration_s":120,"arrival_mean_s":30}}`,
		"over-budget": tinyShardedRunBody(1, 64),
	} {
		if code, _ := submit(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

// TestShardOverrideBitIdenticalAndCached runs the same scenario on a plain
// sequential server and on a budgeted server with a 4-shard override, and
// requires byte-identical results under the same cache key — then pins that
// a shard-less resubmission on the sharded server is served straight from
// the cache, zero events simulated.
func TestShardOverrideBitIdenticalAndCached(t *testing.T) {
	_, tsA := newTestServer(t, Options{Workers: 2})
	code, st := submit(t, tsA, tinyRunBody(7))
	if code != http.StatusAccepted {
		t.Fatalf("sequential submit: status %d", code)
	}
	seq := awaitTerminal(t, tsA, st.ID)
	if seq.State != stateDone {
		t.Fatalf("sequential job ended %s: %s", seq.State, seq.Error)
	}

	_, tsB := newTestServer(t, Options{Workers: 8, RunShards: 2})
	code, st = submit(t, tsB, tinyShardedRunBody(7, 4))
	if code != http.StatusAccepted {
		t.Fatalf("sharded submit: status %d", code)
	}
	shd := awaitTerminal(t, tsB, st.ID)
	if shd.State != stateDone {
		t.Fatalf("sharded job ended %s: %s", shd.State, shd.Error)
	}

	if seq.Key != shd.Key {
		t.Fatalf("cache keys diverged across shard counts: %s vs %s", seq.Key, shd.Key)
	}
	if !bytes.Equal(seq.Result, shd.Result) {
		t.Fatalf("results diverged across shard counts:\nseq: %s\nshd: %s", seq.Result, shd.Result)
	}

	code, repeat := submit(t, tsB, tinyRunBody(7))
	if code != http.StatusOK || !repeat.CacheHit {
		t.Fatalf("shard-less resubmit not served from cache: status %d, hit %v", code, repeat.CacheHit)
	}
	if !bytes.Equal(repeat.Result, shd.Result) {
		t.Fatal("cached payload differs from the sharded run's result")
	}
}
