package service

import (
	"fmt"
	"net/http"
	"strconv"

	"dftmsn/internal/scenario"
	"dftmsn/internal/telemetry"
)

// streamChunk bounds how many events one write batch carries; small enough
// to keep the first bytes flowing immediately, large enough to amortize the
// syscall when replaying a long backlog.
const streamChunk = 512

// ProgressStatus is the wire form of GET /v1/jobs/{id}/progress: the job's
// lifecycle state plus, for "run" jobs that have started, the kernel's
// latest progress snapshot (virtual clock, horizon fraction, event rate,
// ETA). Jobs served from the cache report done with no snapshot — nothing
// was simulated.
type ProgressStatus struct {
	ID       string             `json:"id"`
	State    string             `json:"state"`
	CacheHit bool               `json:"cache_hit,omitempty"`
	Progress *scenario.Progress `json:"progress,omitempty"`
}

func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	j.mu.Lock()
	st := ProgressStatus{ID: j.id, State: j.state, CacheHit: j.cacheHit}
	if j.hasProgress {
		p := j.progress
		st.Progress = &p
	}
	j.mu.Unlock()
	s.respond(w, http.StatusOK, st)
}

// handleStream serves GET /v1/jobs/{id}/stream: the job's trace as
// Server-Sent Events, every message id carrying the event's stream offset.
// The stream replays from any offset (?offset= or the standard
// Last-Event-ID header on reconnect) with no gaps and no duplicates — the
// tee keeps the whole log, and a retried attempt re-records the identical
// deterministic prefix. Idle periods carry comment heartbeats; the stream
// ends with an "event: done" terminator naming the job's terminal state.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if j.tee == nil {
		http.Error(w, `job has no live stream (submit with "stream": true)`, http.StatusNotFound)
		return
	}
	offset, err := streamOffset(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	s.sm.count("stream_requests")
	s.log.Info("stream attached", "job", j.id, "offset", offset)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	buf := make([]byte, 0, 8192)
	for {
		evs, next, done := j.tee.ReadAt(offset, streamChunk)
		if len(evs) > 0 {
			buf = buf[:0]
			for i, ev := range evs {
				buf = telemetry.AppendSSE(buf, offset+uint64(i), ev)
			}
			if _, err := w.Write(buf); err != nil {
				return
			}
			flusher.Flush()
			offset = next
			continue
		}
		if done {
			buf = telemetry.AppendSSEDone(buf[:0], j.stateNow(), j.tee.Len(), j.tee.Dropped())
			w.Write(buf)
			flusher.Flush()
			return
		}
		if !j.tee.WaitAt(offset, r.Context().Done(), s.opts.StreamHeartbeat) {
			select {
			case <-r.Context().Done():
				s.log.Info("stream client gone", "job", j.id, "offset", offset)
				return
			default:
			}
			if _, err := w.Write(telemetry.AppendSSEHeartbeat(buf[:0])); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// streamOffset resolves the client's resume point: an explicit ?offset=
// (the next offset wanted) wins; otherwise the SSE-standard Last-Event-ID
// header (the last id received, so resume at +1); otherwise 0.
func streamOffset(r *http.Request) (uint64, error) {
	if q := r.URL.Query().Get("offset"); q != "" {
		off, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("service: bad offset %q", q)
		}
		return off, nil
	}
	if h := r.Header.Get("Last-Event-ID"); h != "" {
		last, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("service: bad Last-Event-ID %q", h)
		}
		return last + 1, nil
	}
	return 0, nil
}
