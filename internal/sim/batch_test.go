package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// traceOf runs one scheduler over the workload that build schedules and
// returns the full firing trace (time, seq, label per fired event), the
// fired count, and Run's error. With batch=false the batch machinery stays
// disarmed — the sequential control arm every batched trace must match.
func traceOf(t *testing.T, batch bool, build func(s *Scheduler, trace *[]string)) ([]string, uint64, error) {
	t.Helper()
	s := NewScheduler()
	var trace []string
	s.SetEventHook(func(now Time, seq uint64, label string) {
		trace = append(trace, fmt.Sprintf("%.3f/%d/%s", now, seq, label))
	})
	if batch {
		s.SetBatchPrep("plan", func([]*Event) {}, nil)
	}
	build(s, &trace)
	err := s.Run(Infinity)
	return trace, s.Fired(), err
}

// TestSchedulerBatchMatchesSequential pins the core batch-step contract: a
// run of consecutive same-labeled head events fired through stepBatch
// produces the identical trace — times, sequence numbers, labels, fired
// count — as the plain sequential loop, including when a batch callback
// schedules an event that must interleave into the middle of the batch.
func TestSchedulerBatchMatchesSequential(t *testing.T) {
	build := func(s *Scheduler, trace *[]string) {
		for i := 0; i < 10; i++ {
			i := i
			s.AfterLabeled(1+0.1*float64(i), "plan", func() {
				if i == 3 {
					// Must fire between plan 3 (t=1.3) and plan 4 (t=1.4):
					// the batched arm has already popped plans 4..9, so this
					// exercises the push-back path.
					s.AfterLabeled(0.05, "spawn", func() {})
				}
			})
		}
		s.AfterLabeled(2.05, "other", func() {})
	}
	seq, seqFired, err := traceOf(t, false, build)
	if err != nil {
		t.Fatalf("sequential arm: %v", err)
	}
	bat, batFired, err := traceOf(t, true, build)
	if err != nil {
		t.Fatalf("batched arm: %v", err)
	}
	if !reflect.DeepEqual(seq, bat) {
		t.Fatalf("traces diverged:\nsequential: %v\nbatched:    %v", seq, bat)
	}
	if seqFired != batFired {
		t.Fatalf("fired diverged: sequential %d, batched %d", seqFired, batFired)
	}
}

// TestSchedulerBatchPrepAndFlush pins the prep/flush cadence: prep sees the
// whole popped run once (never for a single-event run), and flush receives
// exactly the popped-but-unfired remainder when an interleaving event forces
// a push-back — in order, with owner tags intact.
func TestSchedulerBatchPrepAndFlush(t *testing.T) {
	s := NewScheduler()
	var preps [][]any
	var flushes [][]any
	owners := func(evs []*Event) []any {
		var out []any
		for _, e := range evs {
			out = append(out, e.Owner())
		}
		return out
	}
	s.SetBatchPrep("plan",
		func(batch []*Event) { preps = append(preps, owners(batch)) },
		func(dropped []*Event) { flushes = append(flushes, owners(dropped)) })
	for i := 0; i < 6; i++ {
		i := i
		ev := s.AfterLabeled(1+0.1*float64(i), "plan", func() {
			if i == 1 {
				s.AfterLabeled(0.05, "spawn", func() {})
			}
		})
		ev.SetOwner(i)
	}
	// A lone batch-labeled event behind a foreign event: the foreign head
	// breaks the run, so the lone event pops as a run of one and prep must
	// not fire for it.
	s.AfterLabeled(4, "other", func() {})
	s.AfterLabeled(5, "plan", func() {}).SetOwner("lone")
	if err := s.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	wantPreps := [][]any{{0, 1, 2, 3, 4, 5}, {2, 3, 4, 5}}
	if !reflect.DeepEqual(preps, wantPreps) {
		t.Fatalf("prep batches = %v, want %v", preps, wantPreps)
	}
	wantFlushes := [][]any{{2, 3, 4, 5}}
	if !reflect.DeepEqual(flushes, wantFlushes) {
		t.Fatalf("flushed remainders = %v, want %v", flushes, wantFlushes)
	}
}

// TestSchedulerBatchStopMidBatch pins Stop honored between batch events: the
// remainder is pushed back (still pending, flush told), Run returns
// ErrStopped, and a resumed Run completes the same trace the sequential arm
// produces for the same workload.
func TestSchedulerBatchStopMidBatch(t *testing.T) {
	build := func(s *Scheduler, trace *[]string) {
		for i := 0; i < 8; i++ {
			i := i
			s.AfterLabeled(1+0.1*float64(i), "plan", func() {
				if i == 2 {
					s.Stop()
				}
			})
		}
	}
	seq, _, err := traceOf(t, false, build)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("sequential arm: err = %v, want ErrStopped", err)
	}

	s := NewScheduler()
	var trace []string
	s.SetEventHook(func(now Time, seq uint64, label string) {
		trace = append(trace, fmt.Sprintf("%.3f/%d/%s", now, seq, label))
	})
	flushed := 0
	s.SetBatchPrep("plan", func([]*Event) {}, func(dropped []*Event) { flushed += len(dropped) })
	build(s, &trace)
	if err := s.Run(Infinity); !errors.Is(err, ErrStopped) {
		t.Fatalf("batched arm: err = %v, want ErrStopped", err)
	}
	if !reflect.DeepEqual(trace, seq) {
		t.Fatalf("stopped prefix diverged:\nsequential: %v\nbatched:    %v", seq, trace)
	}
	if flushed != 5 {
		t.Fatalf("flush saw %d pushed-back events, want 5", flushed)
	}
	if s.Pending() != 5 {
		t.Fatalf("%d events pending after stop, want 5", s.Pending())
	}
	// Resume: the pushed-back remainder fires in order.
	if err := s.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 8 {
		t.Fatalf("resumed run fired %d events total, want 8", len(trace))
	}
}

// TestSchedulerBatchCancelCadence pins the stride discipline: the
// cancellation probe is consulted exactly as often in a batched run as in a
// sequential one — stepBatch's per-event Cancelled call replaces (never
// doubles) the Run loop's — so a deadline fires after the identical event
// prefix in both arms.
func TestSchedulerBatchCancelCadence(t *testing.T) {
	const n = 5 * CancelStride
	run := func(batch bool) (probes int, fired uint64, err error) {
		s := NewScheduler()
		if batch {
			s.SetBatchPrep("plan", func([]*Event) {}, nil)
		}
		s.SetCancel(func() bool {
			probes++
			return probes >= 4
		})
		for i := 0; i < n; i++ {
			s.AfterLabeled(1+0.001*float64(i), "plan", func() {})
		}
		err = s.Run(Infinity)
		return probes, s.Fired(), err
	}
	sp, sf, serr := run(false)
	bp, bf, berr := run(true)
	if !errors.Is(serr, ErrCancelled) || !errors.Is(berr, ErrCancelled) {
		t.Fatalf("errs = %v / %v, want ErrCancelled in both arms", serr, berr)
	}
	if sp != bp || sf != bf {
		t.Fatalf("cancel cadence diverged: sequential %d probes / %d fired, batched %d probes / %d fired",
			sp, sf, bp, bf)
	}
}

// TestSchedulerBatchDisarm pins that SetBatchPrep(label, nil, nil) fully
// disarms batching: prep and flush never fire again.
func TestSchedulerBatchDisarm(t *testing.T) {
	s := NewScheduler()
	called := false
	s.SetBatchPrep("plan", func([]*Event) { called = true }, func([]*Event) { called = true })
	s.SetBatchPrep("plan", nil, nil)
	for i := 0; i < 4; i++ {
		s.AfterLabeled(1+0.1*float64(i), "plan", func() {})
	}
	if err := s.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("disarmed batch prep/flush still fired")
	}
}
