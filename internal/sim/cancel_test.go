package sim

import (
	"errors"
	"testing"
)

// TestCancelStopsBetweenEvents pins the cooperative-cancellation contract:
// the probe is consulted on entry and then every CancelStride events, the
// run stops with ErrCancelled strictly between events, and the clock stays
// at the last fired event instead of advancing to the horizon.
func TestCancelStopsBetweenEvents(t *testing.T) {
	s := NewScheduler()
	fired := 0
	var schedule func()
	schedule = func() {
		fired++
		s.Post(1, "tick", schedule)
	}
	s.Post(1, "tick", schedule)

	probeCalls := 0
	s.SetCancel(func() bool {
		probeCalls++
		return probeCalls > 3 // cancel at the fourth probe call
	})
	err := s.Run(1e9)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run = %v, want ErrCancelled", err)
	}
	// Entry probe + one probe per CancelStride events: cancelling on the
	// fourth call means exactly 3*CancelStride events fired.
	if want := 3 * CancelStride; fired != want {
		t.Fatalf("fired %d events before cancellation, want %d", fired, want)
	}
	if got, want := s.Now(), Time(3*CancelStride); got != want {
		t.Fatalf("clock at %v after cancellation, want last event time %v", got, want)
	}
	if s.Fired() != uint64(fired) {
		t.Fatalf("Fired() = %d, want %d", s.Fired(), fired)
	}
}

// TestCancelImmediately checks that a probe that is already true stops the
// run before any event fires.
func TestCancelImmediately(t *testing.T) {
	s := NewScheduler()
	s.Post(1, "", func() { t.Fatal("event fired despite immediate cancellation") })
	s.SetCancel(func() bool { return true })
	if err := s.Run(100); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run = %v, want ErrCancelled", err)
	}
	if s.Fired() != 0 {
		t.Fatalf("fired %d events, want 0", s.Fired())
	}
}

// TestCancelPrefixDeterminism runs the same event program twice — once to
// completion, once cancelled partway — and asserts the cancelled run's
// observation log is exactly a prefix of the full run's: cancellation at
// event granularity cannot perturb what the completed prefix computed.
func TestCancelPrefixDeterminism(t *testing.T) {
	program := func(s *Scheduler, log *[]Time) {
		var tick func()
		n := 0
		tick = func() {
			*log = append(*log, s.Now())
			n++
			if n < 1000 {
				s.Post(0.5, "", tick)
			}
		}
		s.Post(0.5, "", tick)
	}

	var full []Time
	sFull := NewScheduler()
	program(sFull, &full)
	if err := sFull.Run(Infinity); err != nil {
		t.Fatal(err)
	}

	var part []Time
	sPart := NewScheduler()
	program(sPart, &part)
	calls := 0
	sPart.SetCancel(func() bool { calls++; return calls > 2 })
	if err := sPart.Run(Infinity); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run = %v, want ErrCancelled", err)
	}

	if len(part) == 0 || len(part) >= len(full) {
		t.Fatalf("cancelled run logged %d events, full run %d; want a proper non-empty prefix", len(part), len(full))
	}
	for i, v := range part {
		if full[i] != v {
			t.Fatalf("log diverges at %d: cancelled %v, full %v", i, v, full[i])
		}
	}
}

// TestCancelledHonoursStride checks the Step-path probe used by
// checkpointing loops.
func TestCancelledHonoursStride(t *testing.T) {
	s := NewScheduler()
	calls := 0
	s.SetCancel(func() bool { calls++; return false })
	for i := 0; i < 2*CancelStride; i++ {
		if s.Cancelled() {
			t.Fatal("probe returning false must not cancel")
		}
	}
	if calls != 2 {
		t.Fatalf("probe called %d times over %d checks, want 2", calls, 2*CancelStride)
	}
	s.SetCancel(nil)
	if s.Cancelled() {
		t.Fatal("nil probe must never cancel")
	}
}
