package sim

import (
	"errors"
	"testing"
)

// TestCancelStopsBetweenEvents pins the cooperative-cancellation contract:
// the probe is consulted on entry and then every CancelStride events, the
// run stops with ErrCancelled strictly between events, and the clock stays
// at the last fired event instead of advancing to the horizon.
func TestCancelStopsBetweenEvents(t *testing.T) {
	s := NewScheduler()
	fired := 0
	var schedule func()
	schedule = func() {
		fired++
		s.Post(1, "tick", schedule)
	}
	s.Post(1, "tick", schedule)

	probeCalls := 0
	s.SetCancel(func() bool {
		probeCalls++
		return probeCalls > 3 // cancel at the fourth probe call
	})
	err := s.Run(1e9)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run = %v, want ErrCancelled", err)
	}
	// Entry probe + one probe per CancelStride events: cancelling on the
	// fourth call means exactly 3*CancelStride events fired.
	if want := 3 * CancelStride; fired != want {
		t.Fatalf("fired %d events before cancellation, want %d", fired, want)
	}
	if got, want := s.Now(), Time(3*CancelStride); got != want {
		t.Fatalf("clock at %v after cancellation, want last event time %v", got, want)
	}
	if s.Fired() != uint64(fired) {
		t.Fatalf("Fired() = %d, want %d", s.Fired(), fired)
	}
}

// TestCancelImmediately checks that a probe that is already true stops the
// run before any event fires.
func TestCancelImmediately(t *testing.T) {
	s := NewScheduler()
	s.Post(1, "", func() { t.Fatal("event fired despite immediate cancellation") })
	s.SetCancel(func() bool { return true })
	if err := s.Run(100); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run = %v, want ErrCancelled", err)
	}
	if s.Fired() != 0 {
		t.Fatalf("fired %d events, want 0", s.Fired())
	}
}

// TestCancelPrefixDeterminism runs the same event program twice — once to
// completion, once cancelled partway — and asserts the cancelled run's
// observation log is exactly a prefix of the full run's: cancellation at
// event granularity cannot perturb what the completed prefix computed.
func TestCancelPrefixDeterminism(t *testing.T) {
	program := func(s *Scheduler, log *[]Time) {
		var tick func()
		n := 0
		tick = func() {
			*log = append(*log, s.Now())
			n++
			if n < 1000 {
				s.Post(0.5, "", tick)
			}
		}
		s.Post(0.5, "", tick)
	}

	var full []Time
	sFull := NewScheduler()
	program(sFull, &full)
	if err := sFull.Run(Infinity); err != nil {
		t.Fatal(err)
	}

	var part []Time
	sPart := NewScheduler()
	program(sPart, &part)
	calls := 0
	sPart.SetCancel(func() bool { calls++; return calls > 2 })
	if err := sPart.Run(Infinity); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run = %v, want ErrCancelled", err)
	}

	if len(part) == 0 || len(part) >= len(full) {
		t.Fatalf("cancelled run logged %d events, full run %d; want a proper non-empty prefix", len(part), len(full))
	}
	for i, v := range part {
		if full[i] != v {
			t.Fatalf("log diverges at %d: cancelled %v, full %v", i, v, full[i])
		}
	}
}

// TestCancelledHonoursStride checks the Step-path probe used by
// checkpointing loops.
func TestCancelledHonoursStride(t *testing.T) {
	s := NewScheduler()
	calls := 0
	s.SetCancel(func() bool { calls++; return false })
	for i := 0; i < 2*CancelStride; i++ {
		if s.Cancelled() {
			t.Fatal("probe returning false must not cancel")
		}
	}
	if calls != 2 {
		t.Fatalf("probe called %d times over %d checks, want 2", calls, 2*CancelStride)
	}
	s.SetCancel(nil)
	if s.Cancelled() {
		t.Fatal("nil probe must never cancel")
	}
}

// TestProgressProbeSharesStride pins the progress-probe contract: the probe
// fires on the same CancelStride cadence as the cancellation probe, with or
// without one armed, and a probe-only scheduler still never cancels.
func TestProgressProbeSharesStride(t *testing.T) {
	s := NewScheduler()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 5*CancelStride {
			s.Post(1, "tick", tick)
		}
	}
	s.Post(1, "tick", tick)

	probes := 0
	var snap Progress
	s.SetProbe(func() { probes++; snap = s.Progress() })
	if err := s.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	// Entry probe + one per CancelStride fired events.
	if want := 5; probes != want {
		t.Fatalf("probe fired %d times over %d events, want %d", probes, n, want)
	}
	if snap.Fired == 0 || snap.Fired != uint64(4*CancelStride) {
		t.Fatalf("last snapshot fired = %d, want %d", snap.Fired, 4*CancelStride)
	}
	if snap.Now != Time(4*CancelStride) {
		t.Fatalf("last snapshot clock = %v, want %v", snap.Now, Time(4*CancelStride))
	}

	// The probe composes with a cancellation probe on one stride counter.
	s2 := NewScheduler()
	var tick2 func()
	s2.Post(1, "tick", func() {})
	tick2 = func() { s2.Post(1, "tick", tick2) }
	s2.Post(1, "tick", tick2)
	probes2, cancels := 0, 0
	s2.SetProbe(func() { probes2++ })
	s2.SetCancel(func() bool { cancels++; return cancels > 2 })
	if err := s2.Run(Infinity); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run = %v, want ErrCancelled", err)
	}
	if probes2 != cancels {
		t.Fatalf("progress probe fired %d times, cancel probe %d; want lockstep", probes2, cancels)
	}

	// Clearing the probe restores the no-probe fast path.
	s.SetProbe(nil)
	if s.Cancelled() {
		t.Fatal("cleared probe must never cancel")
	}
}

// TestProgressSnapshotCountersMatchGetters checks Progress against the
// individual counter getters after a run with elision accounting.
func TestProgressSnapshotCountersMatchGetters(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 10; i++ {
		s.Post(Time(i+1), "", func() {})
	}
	s.CountElided(7)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	p := s.Progress()
	if p.Fired != s.Fired() || p.Scheduled != s.Scheduled() || p.Elided != s.Elided() {
		t.Fatalf("Progress %+v disagrees with getters fired=%d scheduled=%d elided=%d",
			p, s.Fired(), s.Scheduled(), s.Elided())
	}
	if p.Now != s.Now() || p.Pending != s.Pending() {
		t.Fatalf("Progress %+v disagrees with Now=%v Pending=%d", p, s.Now(), s.Pending())
	}
}
