package sim

import (
	"math/rand/v2"
	"testing"
)

// TestFreeListNeverResurrectsHandleEvents locks the pooling contract: handle
// events (At/After/AfterLabeled) are never recycled, so a retained handle
// stays permanently !Pending after it fires or is cancelled — no matter how
// hard the Post/PostArg free list churns underneath. A violation would show
// up as a stale handle flipping back to Pending (its Event object reused for
// a later pooled event).
func TestFreeListNeverResurrectsHandleEvents(t *testing.T) {
	s := NewScheduler()

	type tracked struct {
		ev        *Event
		at        Time
		cancelled bool
		fired     bool
	}
	handles := make([]*tracked, 0, 200)
	for i := 0; i < 200; i++ {
		tr := &tracked{at: float64(i%13) * 0.37}
		tr.ev = s.AfterLabeled(tr.at, "handle", func() { tr.fired = true })
		handles = append(handles, tr)
	}
	for i := 0; i < len(handles); i += 3 {
		s.Cancel(handles[i].ev)
		handles[i].cancelled = true
	}

	// Pooled churn: a self-rescheduling chain plus a burst of extra posts per
	// step, so released events are constantly re-issued while the handles
	// above fire and their objects would be ripe for (incorrect) reuse.
	checkStale := func() {
		for i, tr := range handles {
			done := tr.cancelled || tr.fired
			if done && tr.ev.Pending() {
				t.Fatalf("handle %d resurrected at t=%.3f (cancelled=%v fired=%v)",
					i, s.Now(), tr.cancelled, tr.fired)
			}
			if done && tr.ev.At() != tr.at {
				t.Fatalf("handle %d timestamp rewritten: At()=%v want %v", i, tr.ev.At(), tr.at)
			}
		}
	}
	var churn func()
	churn = func() {
		checkStale()
		for j := 0; j < 4; j++ {
			s.Post(0.01*float64(j), "burst", func() {})
		}
		s.PostArg(0.02, "burst-arg", func(any) {}, nil)
		if s.Now() < 8 {
			s.Post(0.05, "churn", churn)
		}
	}
	s.Post(0, "churn", churn)

	if err := s.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	checkStale()
	for i, tr := range handles {
		if tr.cancelled && tr.fired {
			t.Errorf("handle %d fired after cancel", i)
		}
		if !tr.cancelled && !tr.fired {
			t.Errorf("handle %d never fired", i)
		}
	}
}

// TestRescheduleMatchesCancelPlusAfter locks Reschedule's contract: it is
// Cancel followed by AfterLabeled — one sequence number consumed, same
// firing order — whether the handle is pending, fired, or cancelled.
func TestRescheduleMatchesCancelPlusAfter(t *testing.T) {
	run := func(useReschedule bool) []string {
		s := NewScheduler()
		var order []string
		note := func(tag string) func() { return func() { order = append(order, tag) } }

		ev := s.AfterLabeled(1, "a", note("a-first"))
		s.AfterLabeled(2, "b", note("b"))
		// Re-aim the pending handle to t=2: scheduled after "b", so it must
		// fire after "b" via the sequence tie-break.
		if useReschedule {
			ev = s.Reschedule(ev, 2, "a", note("a-moved"))
		} else {
			s.Cancel(ev)
			ev = s.AfterLabeled(2, "a", note("a-moved"))
		}
		s.AfterLabeled(2, "c", note("c")) // must still sort after a-moved
		if err := s.Run(Infinity); err != nil {
			t.Fatal(err)
		}

		// Reuse after firing, then after cancelling.
		ev = s.Reschedule(ev, 1, "a", note("a-again"))
		s.Cancel(ev)
		ev = s.Reschedule(ev, 1, "a", note("a-final"))
		if !ev.Pending() {
			t.Fatal("rescheduled handle not pending")
		}
		if err := s.Run(Infinity); err != nil {
			t.Fatal(err)
		}
		return order
	}

	got := run(true)
	want := run(false)
	if len(got) != len(want) {
		t.Fatalf("orders differ: reschedule=%v cancel+after=%v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("orders diverge at %d: reschedule=%v cancel+after=%v", i, got, want)
		}
	}
}

// TestPropertyPoolChurnKeepsOrder hammers the hand-rolled heap with a random
// interleaving of handle scheduling, cancellation, rescheduling, and pooled
// posts, asserting events always fire in nondecreasing (time, seq) order.
func TestPropertyPoolChurnKeepsOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for trial := 0; trial < 50; trial++ {
		s := NewScheduler()
		lastAt := -1.0
		check := func() {
			if s.Now() < lastAt {
				t.Fatalf("trial %d: clock went backwards %v -> %v", trial, lastAt, s.Now())
			}
			lastAt = s.Now()
		}
		var live []*Event
		var drive func()
		drive = func() {
			check()
			switch rng.IntN(5) {
			case 0:
				live = append(live, s.AfterLabeled(rng.Float64()*2, "h", check))
			case 1:
				if len(live) > 0 {
					s.Cancel(live[rng.IntN(len(live))])
				}
			case 2:
				if len(live) > 0 {
					i := rng.IntN(len(live))
					live[i] = s.Reschedule(live[i], rng.Float64()*2, "r", check)
				}
			default:
				s.Post(rng.Float64(), "p", check)
			}
			if s.Now() < 5 {
				s.Post(rng.Float64()*0.2, "drive", drive)
			}
		}
		s.Post(0, "drive", drive)
		if err := s.Run(Infinity); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPostSteadyStateAllocates nothing: after warm-up the free list feeds
// every Post/PostArg, so fire-and-forget scheduling is allocation-free.
func TestPostSteadyStateAllocationFree(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	fnArg := func(any) {}
	// Warm the pool.
	for i := 0; i < 10; i++ {
		s.Post(0, "warm", fn)
	}
	for s.Step() {
	}
	avg := testing.AllocsPerRun(100, func() {
		s.Post(0, "steady", fn)
		s.PostArg(0, "steady", fnArg, nil)
		for s.Step() {
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Post/PostArg allocates %.1f per cycle, want 0", avg)
	}
}
