package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
)

// ShardPool runs the data-parallel batch phases of a simulation across a
// fixed set of worker goroutines. The kernel itself stays single-threaded —
// every event still fires on the goroutine that calls Scheduler.Run, in
// global (time, seq) order — and the pool is only handed the draw-free,
// provably independent inner loops of O(N) batch work (mobility free
// flight, spatial-index cell-key computation, carrier-sense verdicts,
// idle-span plan prep, node construction). Workers write into disjoint
// per-shard scratch bands; the kernel goroutine then drains the scratch
// sequentially in canonical order, so every RNG draw, scheduler operation,
// and telemetry record happens on the kernel goroutine in exactly the
// sequential kernel's order.
//
// Ownership rule (pinned by TestSchedulerShardStress): the Scheduler,
// Wheel, and pooled event free list belong to the kernel goroutine. Shard
// workers must never call Post, Reschedule, Cancel, or any other scheduler
// method — they compute, the kernel schedules.
type ShardPool struct {
	shards int
	work   []chan shardJob
	done   chan shardResult
	closed bool
}

// shardJob is one Run/RunPhase invocation as delivered to a worker: the
// shard function plus the pprof phase label to attribute its CPU time to.
type shardJob struct {
	fn    func(int)
	phase string
}

// shardResult carries one worker's outcome for a Run call back to the
// caller, including a recovered panic if the shard function blew up.
type shardResult struct {
	shard int
	value any
	ok    bool
}

// NewShardPool starts a pool of shards-1 worker goroutines (shard 0 runs on
// the calling goroutine). The workers persist until Close, so per-Run cost
// is two channel hops per worker rather than goroutine creation.
func NewShardPool(shards int) *ShardPool {
	if shards < 1 {
		panic(fmt.Sprintf("sim: shard pool needs at least 1 shard, got %d", shards))
	}
	p := &ShardPool{shards: shards, done: make(chan shardResult, shards-1)}
	for i := 1; i < shards; i++ {
		ch := make(chan shardJob)
		p.work = append(p.work, ch)
		go p.worker(i, ch)
	}
	return p
}

func (p *ShardPool) worker(shard int, ch chan shardJob) {
	// The shard label is permanent for the goroutine's lifetime; RunPhase
	// jobs additionally carry a phase label for their duration, so a CPU
	// profile attributes each parallel phase instead of lumping every
	// worker sample under the generic worker loop.
	base := pprof.WithLabels(context.Background(), pprof.Labels("shard", strconv.Itoa(shard)))
	pprof.SetGoroutineLabels(base)
	for job := range ch {
		if job.phase == "" {
			p.done <- runShard(job.fn, shard)
			continue
		}
		var res shardResult
		pprof.Do(base, pprof.Labels("phase", job.phase), func(context.Context) {
			res = runShard(job.fn, shard)
		})
		p.done <- res
	}
}

func runShard(fn func(int), shard int) (res shardResult) {
	res = shardResult{shard: shard}
	defer func() {
		if v := recover(); v != nil {
			res.value, res.ok = v, false
		}
	}()
	fn(shard)
	res.ok = true
	return res
}

// Shards returns the pool's shard count, including the caller's shard 0.
func (p *ShardPool) Shards() int { return p.shards }

// Run invokes fn(shard) once per shard, concurrently, and returns after all
// shards finish (a full barrier). Shard 0 runs on the calling goroutine.
// fn must confine its writes to state owned by its shard — typically the
// index band Band(n, Shards(), shard) of a scratch slice. If any shard
// panics, Run re-raises the panic of the lowest-numbered panicking shard on
// the caller after the barrier, so failures are deterministic regardless of
// goroutine scheduling. Run on a closed pool panics deterministically
// (without the flag it would silently run only shard 0).
func (p *ShardPool) Run(fn func(shard int)) {
	p.run(shardJob{fn: fn})
}

// RunPhase is Run with a pprof phase label attached to every shard for the
// duration of the call (shard 0's caller labels are restored afterwards),
// so CPU profiles split worker time by batch phase. An empty phase is
// exactly Run — no labeling cost on unlabeled call sites.
func (p *ShardPool) RunPhase(phase string, fn func(shard int)) {
	p.run(shardJob{fn: fn, phase: phase})
}

func (p *ShardPool) run(job shardJob) {
	if p.closed {
		panic("sim: ShardPool.Run after Close")
	}
	for _, ch := range p.work {
		ch <- job
	}
	var first shardResult
	if job.phase == "" {
		first = runShard(job.fn, 0)
	} else {
		pprof.Do(context.Background(), pprof.Labels("shard", "0", "phase", job.phase), func(context.Context) {
			first = runShard(job.fn, 0)
		})
	}
	for range p.work {
		if r := <-p.done; !r.ok && (first.ok || r.shard < first.shard) {
			first = r
		}
	}
	if !first.ok {
		panic(first.value)
	}
}

// Close stops the worker goroutines. Run must not be called after Close —
// it panics if it is. Close is idempotent.
func (p *ShardPool) Close() {
	for _, ch := range p.work {
		close(ch)
	}
	p.work = nil
	p.closed = true
}

// Band returns the half-open index range [lo, hi) that shard owns when n
// items are split contiguously across shards. Bands differ in size by at
// most one and cover [0, n) exactly; shards beyond n receive empty bands.
func Band(n, shards, shard int) (lo, hi int) {
	base, rem := n/shards, n%shards
	lo = shard*base + min(shard, rem)
	hi = lo + base
	if shard < rem {
		hi++
	}
	return lo, hi
}

// ResolveShards maps a Shards configuration value to a concrete shard
// count: 0 (and any negative value a caller failed to validate) means one
// shard per available CPU, values >= 1 pass through unchanged. A resolved
// count of 1 means the sequential kernel runs with no pool at all.
func ResolveShards(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
