package sim

import (
	"fmt"
	"sync"
	"testing"
)

func TestBandCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 7, 16, 100, 1001} {
		for shards := 1; shards <= 9; shards++ {
			prev := 0
			for shard := 0; shard < shards; shard++ {
				lo, hi := Band(n, shards, shard)
				if lo != prev {
					t.Fatalf("Band(%d,%d,%d): lo=%d, want %d (bands must tile)", n, shards, shard, lo, prev)
				}
				if hi < lo {
					t.Fatalf("Band(%d,%d,%d): hi=%d < lo=%d", n, shards, shard, hi, lo)
				}
				if size := hi - lo; size != n/shards && size != n/shards+1 {
					t.Fatalf("Band(%d,%d,%d): size %d not within one of %d", n, shards, shard, size, n/shards)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("Band(%d,%d,·): bands end at %d, want %d", n, shards, prev, n)
			}
		}
	}
}

func TestResolveShards(t *testing.T) {
	if got := ResolveShards(3); got != 3 {
		t.Fatalf("ResolveShards(3) = %d, want 3", got)
	}
	if got := ResolveShards(0); got < 1 {
		t.Fatalf("ResolveShards(0) = %d, want >= 1 (GOMAXPROCS)", got)
	}
	if got := ResolveShards(-2); got < 1 {
		t.Fatalf("ResolveShards(-2) = %d, want >= 1", got)
	}
}

func TestShardPoolRunsEveryShardOnce(t *testing.T) {
	const shards = 5
	pool := NewShardPool(shards)
	defer pool.Close()
	if pool.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", pool.Shards(), shards)
	}
	hits := make([]int, shards)
	for round := 0; round < 100; round++ {
		pool.Run(func(shard int) { hits[shard]++ })
	}
	for shard, n := range hits {
		if n != 100 {
			t.Fatalf("shard %d ran %d times, want 100", shard, n)
		}
	}
}

func TestShardPoolSingleShard(t *testing.T) {
	pool := NewShardPool(1)
	defer pool.Close()
	ran := false
	pool.Run(func(shard int) {
		if shard != 0 {
			t.Errorf("single-shard pool ran shard %d", shard)
		}
		ran = true
	})
	if !ran {
		t.Fatal("single-shard pool did not run the function")
	}
}

func TestShardPoolPanicLowestShardWins(t *testing.T) {
	pool := NewShardPool(6)
	defer pool.Close()
	got := func() (v any) {
		defer func() { v = recover() }()
		pool.Run(func(shard int) {
			if shard >= 2 {
				panic(fmt.Sprintf("boom shard %d", shard))
			}
		})
		return nil
	}()
	if got != "boom shard 2" {
		t.Fatalf("Run panicked with %v, want lowest panicking shard (boom shard 2)", got)
	}
	// The pool survives a panicking Run: workers recover and keep serving.
	sum := 0
	pool.Run(func(shard int) {
		if shard == 0 {
			sum = 1
		}
	})
	if sum != 1 {
		t.Fatal("pool unusable after a panicking Run")
	}
}

func TestShardPoolPanicOnCallerShard(t *testing.T) {
	pool := NewShardPool(3)
	defer pool.Close()
	got := func() (v any) {
		defer func() { v = recover() }()
		pool.Run(func(shard int) { panic(fmt.Sprintf("boom shard %d", shard)) })
		return nil
	}()
	if got != "boom shard 0" {
		t.Fatalf("Run panicked with %v, want boom shard 0", got)
	}
}

// TestShardPoolBandFewerItemsThanShards pins Band's behaviour when the pool
// is wider than the work: the first n shards get one item each and the rest
// get empty (lo == hi) bands, so per-band loops simply don't run — no shard
// ever sees an out-of-range index.
func TestShardPoolBandFewerItemsThanShards(t *testing.T) {
	const n, shards = 3, 8
	pool := NewShardPool(shards)
	defer pool.Close()
	hits := make([]int, n)
	empty := 0
	var mu sync.Mutex
	pool.Run(func(shard int) {
		lo, hi := Band(n, shards, shard)
		mu.Lock()
		defer mu.Unlock()
		if lo == hi {
			empty++
			return
		}
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	if empty != shards-n {
		t.Fatalf("%d empty bands, want %d", empty, shards-n)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d covered %d times, want exactly once", i, h)
		}
	}
}

// TestShardPoolMultiPanicNonContiguous pins the re-raise rule when several
// non-adjacent shards panic in one Run: the lowest shard's panic value wins,
// deterministically, regardless of which worker finishes first.
func TestShardPoolMultiPanicNonContiguous(t *testing.T) {
	pool := NewShardPool(6)
	defer pool.Close()
	for round := 0; round < 20; round++ {
		got := func() (v any) {
			defer func() { v = recover() }()
			pool.Run(func(shard int) {
				if shard == 1 || shard == 3 || shard == 5 {
					panic(fmt.Sprintf("boom shard %d", shard))
				}
			})
			return nil
		}()
		if got != "boom shard 1" {
			t.Fatalf("round %d: Run panicked with %v, want boom shard 1", round, got)
		}
	}
}

// TestShardPoolRunAfterClosePanics pins that a Run on a closed pool fails
// loudly and deterministically instead of deadlocking on dead workers.
func TestShardPoolRunAfterClosePanics(t *testing.T) {
	pool := NewShardPool(4)
	pool.Close()
	got := func() (v any) {
		defer func() { v = recover() }()
		pool.Run(func(int) {})
		return nil
	}()
	want := "sim: ShardPool.Run after Close"
	if got != want {
		t.Fatalf("Run after Close panicked with %v, want %q", got, want)
	}
	// RunPhase shares the guard.
	got = func() (v any) {
		defer func() { v = recover() }()
		pool.RunPhase("p", func(int) {})
		return nil
	}()
	if got != want {
		t.Fatalf("RunPhase after Close panicked with %v, want %q", got, want)
	}
}

// TestShardPoolRunPhase pins that the pprof-labeled variant still runs every
// shard exactly once per call, on panic paths included.
func TestShardPoolRunPhase(t *testing.T) {
	const shards = 4
	pool := NewShardPool(shards)
	defer pool.Close()
	hits := make([]int, shards)
	for round := 0; round < 50; round++ {
		pool.RunPhase("test-phase", func(shard int) { hits[shard]++ })
	}
	for shard, n := range hits {
		if n != 50 {
			t.Fatalf("shard %d ran %d times, want 50", shard, n)
		}
	}
	got := func() (v any) {
		defer func() { v = recover() }()
		pool.RunPhase("test-phase", func(shard int) {
			if shard == 2 {
				panic("labeled boom")
			}
		})
		return nil
	}()
	if got != "labeled boom" {
		t.Fatalf("RunPhase panicked with %v, want labeled boom", got)
	}
}

// TestSchedulerShardStress pins the ownership rule the sharded kernel relies
// on: shard workers only write disjoint bands of a scratch slice, and the
// Scheduler — including its pooled event free list — is touched exclusively
// by the kernel goroutine, which drains the scratch sequentially after the
// Run barrier. Under -race this fails loudly if bands overlap or a worker
// reaches into kernel state, and the cross-shard-count comparison pins that
// the drain order (hence every Post sequence number) is independent of
// goroutine scheduling.
func TestSchedulerShardStress(t *testing.T) {
	run := func(shards int) (fired, scheduled uint64, sum float64) {
		s := NewScheduler()
		pool := NewShardPool(shards)
		defer pool.Close()
		const n = 256
		scratch := make([]float64, n)
		rounds := 0
		var tick func()
		tick = func() {
			rounds++
			r := rounds
			pool.Run(func(shard int) {
				lo, hi := Band(n, pool.Shards(), shard)
				for i := lo; i < hi; i++ {
					scratch[i] = float64(i*r) * 0.5
				}
			})
			// Kernel-goroutine drain: pooled Post events recycle through the
			// free list every round, exactly how the batch phases feed the
			// scheduler in the sharded scenario kernel.
			for i := 0; i < n; i += 16 {
				v := scratch[i]
				s.Post(0.25, "drain", func() { sum += v })
			}
			if rounds < 64 {
				s.Post(1, "tick", tick)
			}
		}
		s.Post(1, "tick", tick)
		if err := s.Run(Infinity); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return s.Fired(), s.Scheduled(), sum
	}
	f1, s1, sum1 := run(1)
	for _, shards := range []int{2, 4, 8} {
		f, sc, sum := run(shards)
		if f != f1 || sc != s1 || sum != sum1 {
			t.Fatalf("shards=%d diverged: fired %d/%d scheduled %d/%d sum %v/%v",
				shards, f, f1, sc, s1, sum, sum1)
		}
	}
}

// TestWheelShardStress drives a Wheel whose subscribers hand their O(N) body
// to a ShardPool and then Reschedule a handle event from the kernel
// goroutine. It pins that wheel firing order, elision counts, and the
// accumulated drain are bit-identical across shard counts under -race.
func TestWheelShardStress(t *testing.T) {
	run := func(shards int) (fired, elided uint64, total float64) {
		s := NewScheduler()
		w := NewWheel(s, 500)
		pool := NewShardPool(shards)
		defer pool.Close()
		const n = 128
		scratch := make([]float64, n)
		var pulse *Event
		w.Add(1.5, func(now Time) {
			pool.Run(func(shard int) {
				lo, hi := Band(n, pool.Shards(), shard)
				for i := lo; i < hi; i++ {
					scratch[i] = float64(i) * now
				}
			})
			for _, v := range scratch {
				total += v
			}
			pulse = s.Reschedule(pulse, 0.75, "pulse", func() { total += 1 })
		})
		w.Add(2.5, func(now Time) {
			pool.Run(func(shard int) {
				lo, hi := Band(n, pool.Shards(), shard)
				for i := lo; i < hi; i++ {
					scratch[i] = -float64(i) - now
				}
			})
			for _, v := range scratch {
				total += v
			}
		})
		if err := s.Run(500); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return s.Fired(), s.Elided(), total
	}
	f1, e1, t1 := run(1)
	for _, shards := range []int{2, 4, 8} {
		f, e, tot := run(shards)
		if f != f1 || e != e1 || tot != t1 {
			t.Fatalf("shards=%d diverged: fired %d/%d elided %d/%d total %v/%v",
				shards, f, f1, e, e1, tot, t1)
		}
	}
}
