// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of scheduled
// events. Events fire in (time, sequence) order, so two events scheduled for
// the same instant fire in the order they were scheduled, which makes every
// simulation run reproducible from its inputs alone.
//
// The kernel is intentionally single-threaded: all events run on the
// goroutine that calls Run. Parallelism in this repository lives one level
// up, in the sweep harness, which runs many independent kernels at once.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation. Virtual time is unrelated to wall-clock time; a Duration of
// 1.0 means one simulated second.
type Time = float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Infinity is a time later than any event a simulation can schedule.
const Infinity Time = math.MaxFloat64

// ErrStopped is returned by Run when the simulation was halted by Stop
// before reaching its horizon.
var ErrStopped = errors.New("sim: stopped")

// ErrCancelled is returned by Run when the cooperative cancellation probe
// armed via SetCancel reported true. Cancellation is observed strictly
// between events — never mid-event — so every event the run did fire is
// bit-identical to the corresponding prefix of an uncancelled run: no RNG
// draw, telemetry record, or metric of the completed prefix is perturbed.
var ErrCancelled = errors.New("sim: cancelled")

// Event is a scheduled callback. The zero value is not useful; events are
// created by Scheduler.At and Scheduler.After.
//
// Events come in two ownership flavors. Handle events (from At, After,
// AfterLabeled, Reschedule) are returned to the caller, who may Cancel or
// Reschedule them later; they are never recycled, so a retained handle
// stays permanently !Pending after it fires or is cancelled. Pooled events
// (from Post and PostArg) return no handle, cannot be cancelled, and are
// recycled through the scheduler's free list after firing.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	fnArg    func(any) // set instead of fn for PostArg events
	arg      any
	index    int // position in the heap, -1 once fired or cancelled
	labels   string
	poolable bool // true for Post/PostArg events: recycled after firing
	owner    any  // opaque owner tag for batch prep (see SetBatchPrep)
}

// SetOwner attaches an opaque owner tag to the event. The scheduler never
// interprets it; a batch-prep callback uses it to map an event back to the
// component whose state the prep pass should precompute. The tag survives
// Reschedule/RescheduleAt reuse of handle events.
func (e *Event) SetOwner(v any) { e.owner = v }

// Owner returns the tag attached by SetOwner, or nil.
func (e *Event) Owner() any { return e.owner }

// At returns the virtual time this event is scheduled to fire at.
func (e *Event) At() Time { return e.at }

// Seq returns the event's scheduling sequence number. Together with At it
// pins the event's exact position in the firing order, which is what the
// snapshot layer records so a restored run re-injects pending events at
// bit-identical heap positions.
func (e *Event) Seq() uint64 { return e.seq }

// Pending reports whether the event is still scheduled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// Label returns the debugging label attached at scheduling time, if any.
func (e *Event) Label() string { return e.labels }

// EventPanic wraps a panic raised by an event callback with the simulation
// context of the event that was executing: virtual time, sequence number,
// and the debugging label attached at scheduling time. Without it, a panic
// mid-run surfaces with a Go stack but no hint of *when* in virtual time or
// *which* scheduled event went wrong.
type EventPanic struct {
	// Time is the virtual time the panicking event fired at.
	Time Time
	// Seq is the event's scheduling sequence number.
	Seq uint64
	// Label is the event's debugging label ("" if none was attached).
	Label string
	// Value is the original panic value.
	Value any
}

// Error implements error so recovered EventPanics compose with errors.As.
func (p *EventPanic) Error() string {
	label := p.Label
	if label == "" {
		label = "-"
	}
	return fmt.Sprintf("sim: panic in event t=%.6f seq=%d label=%s: %v", p.Time, p.Seq, label, p.Value)
}

// Unwrap exposes the original panic value when it was an error.
func (p *EventPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Scheduler owns the virtual clock and the pending-event queue.
// The zero value is a valid scheduler positioned at time 0.
type Scheduler struct {
	queue     eventHeap
	now       Time
	seq       uint64
	stopped   bool
	fired     uint64
	scheduled uint64
	elided    uint64
	onEvent   func(now Time, seq uint64, label string)
	free      []*Event // recycled Post/PostArg events; handle events never enter
	isoSeq    uint64   // next isolated sequence number; 0 means "not yet used"

	cancel          func() bool // cooperative cancellation probe (see SetCancel)
	probe           func()      // progress probe sharing the cancel stride (see SetProbe)
	cancelCountdown int         // events until the next probe call

	// Batch prep (see SetBatchPrep): when the head of the queue carries
	// batchLabel, Run pops the whole consecutive run of same-labeled head
	// events, hands it to batchPrep once, and then fires the events one by
	// one under the exact sequential discipline.
	batchLabel string
	batchPrep  func(batch []*Event)
	batchFlush func(dropped []*Event)
	batchBuf   []*Event
}

// CancelStride is how many events fire between calls to the cancellation
// probe. Probes are typically wall-clock checks (time.Now per call), so
// calling one per event would tax the kernel's hottest loop; a stride keeps
// the overhead negligible while still bounding the reaction latency to a
// few dozen events. The stride only affects *when* cancellation is noticed,
// never what the completed prefix computed.
const CancelStride = 64

// isoSeqBase is the first sequence number of the isolated band (see
// AtIsolated). It leaves the ordinary band below it more headroom than any
// run can consume while keeping the isolated band itself effectively
// unbounded.
const isoSeqBase uint64 = 1 << 62

// NewScheduler returns a scheduler with its clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Scheduled returns the number of events ever pushed onto the queue,
// counting reschedules (each consumes a sequence number, like a fresh
// scheduling).
func (s *Scheduler) Scheduled() uint64 { return s.scheduled }

// Elided returns the number of events that elision layers above the kernel
// replayed in closed form instead of scheduling (see CountElided).
func (s *Scheduler) Elided() uint64 { return s.elided }

// CountElided records n events that an elision layer coalesced away: work
// that an eager implementation would have scheduled and fired as distinct
// events but that was instead replayed in closed form. The kernel only
// aggregates the count; callers own the accounting discipline.
func (s *Scheduler) CountElided(n uint64) { s.elided += n }

// NextEventTime returns the firing time of the earliest pending event. The
// second result is false when the queue is empty. Peeking does not disturb
// the queue; elision layers use it to bound how far they may fast-forward.
func (s *Scheduler) NextEventTime() (Time, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) is a programming error and is reported via the returned error.
func (s *Scheduler) At(t Time, fn func()) (*Event, error) {
	if fn == nil {
		return nil, errors.New("sim: nil event func")
	}
	if t < s.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", t, s.now)
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	s.scheduled++
	s.queue.push(e)
	return e, nil
}

// After schedules fn to run d seconds from now. A negative d is clamped to
// zero so that callers computing small deltas never schedule into the past.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	e, err := s.At(s.now+d, fn)
	if err != nil {
		// Unreachable: s.now+d >= s.now for d >= 0 and fn is checked by
		// the only caller paths that can pass nil.
		panic(err)
	}
	return e
}

// AfterLabeled is After with a debugging label attached to the event.
func (s *Scheduler) AfterLabeled(d Duration, label string, fn func()) *Event {
	e := s.After(d, fn)
	e.labels = label
	return e
}

// Post schedules fn to run d seconds from now without returning a handle.
// Posted events cannot be cancelled, which lets the scheduler recycle their
// Event objects through an internal free list: steady-state fire-and-forget
// scheduling allocates no Event per call. A negative d is clamped to zero.
func (s *Scheduler) Post(d Duration, label string, fn func()) {
	if fn == nil {
		panic(errors.New("sim: nil event func"))
	}
	e := s.pooled(d, label)
	e.fn = fn
	s.scheduled++
	s.queue.push(e)
}

// PostArg is Post for callbacks taking one argument. Threading the argument
// through the event instead of closing over it lets hot paths schedule one
// long-lived func(any) with zero per-call allocations (a pointer stored in
// an `any` does not allocate).
func (s *Scheduler) PostArg(d Duration, label string, fn func(any), arg any) {
	if fn == nil {
		panic(errors.New("sim: nil event func"))
	}
	e := s.pooled(d, label)
	e.fnArg = fn
	e.arg = arg
	s.scheduled++
	s.queue.push(e)
}

// pooled takes an Event from the free list (or allocates the pool's first
// use of a slot) and stamps it for scheduling d from now.
func (s *Scheduler) pooled(d Duration, label string) *Event {
	if d < 0 {
		d = 0
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{poolable: true}
	}
	e.at = s.now + d
	e.seq = s.seq
	s.seq++
	e.labels = label
	return e
}

// release returns a fired pooled event to the free list.
func (s *Scheduler) release(e *Event) {
	e.fn = nil
	e.fnArg = nil
	e.arg = nil
	e.labels = ""
	e.owner = nil
	e.index = -1
	s.free = append(s.free, e)
}

// Reschedule moves e to fire d seconds from now with the given fn and label,
// reusing the Event object in place. It is semantically equivalent to
// Cancel(e) followed by AfterLabeled(d, label, fn) — exactly one sequence
// number is consumed either way — but allocates nothing. The caller must
// hold the only live reference to e; handles obtained from At, After,
// AfterLabeled, or a previous Reschedule qualify, whether pending, fired,
// or cancelled. A nil e falls back to AfterLabeled.
func (s *Scheduler) Reschedule(e *Event, d Duration, label string, fn func()) *Event {
	if e == nil || e.poolable {
		return s.AfterLabeled(d, label, fn)
	}
	if fn == nil {
		panic(errors.New("sim: nil event func"))
	}
	if d < 0 {
		d = 0
	}
	if e.index >= 0 {
		s.queue.remove(e.index)
	}
	e.at = s.now + d
	e.seq = s.seq
	s.seq++
	s.scheduled++
	e.fn = fn
	e.fnArg = nil
	e.arg = nil
	e.labels = label
	s.queue.push(e)
	return e
}

// RescheduleAt is Reschedule with an absolute firing time instead of a
// delay. Elision layers need it to land events at boundary times computed
// by replaying the eager arm's floating-point arithmetic: rescheduling by
// the delta (t - now) can round to a different float64 than the eager
// accumulation produced, and a one-ulp drift is enough to reorder two
// events. Times in the past are an error, mirroring At.
func (s *Scheduler) RescheduleAt(e *Event, t Time, label string, fn func()) (*Event, error) {
	if t < s.now {
		return nil, fmt.Errorf("sim: reschedule at %v before now %v", t, s.now)
	}
	if e == nil || e.poolable {
		fresh, err := s.At(t, fn)
		if err == nil {
			fresh.labels = label
		}
		return fresh, err
	}
	if fn == nil {
		return nil, errors.New("sim: nil event func")
	}
	if e.index >= 0 {
		s.queue.remove(e.index)
	}
	e.at = t
	e.seq = s.seq
	s.seq++
	s.scheduled++
	e.fn = fn
	e.fnArg = nil
	e.arg = nil
	e.labels = label
	s.queue.push(e)
	return e, nil
}

// AtIsolated schedules fn at absolute time t with a sequence number from the
// isolated band above isoSeqBase, without touching the ordinary sequence
// counter or the scheduled total. Layers whose mere presence must not perturb
// the rest of the run — the fault injector is the canonical user — schedule
// through it: adding or removing isolated events leaves every ordinary
// event's (time, seq) position and the kernel's counters bit-identical, which
// is what lets a warm snapshot taken before the first fault be re-armed with
// a different fault plan. Isolated events lose ties against ordinary events
// at the same instant and fire in scheduling order among themselves.
func (s *Scheduler) AtIsolated(t Time, label string, fn func()) (*Event, error) {
	if fn == nil {
		return nil, errors.New("sim: nil event func")
	}
	if t < s.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", t, s.now)
	}
	if s.isoSeq == 0 {
		s.isoSeq = isoSeqBase
	}
	e := &Event{at: t, seq: s.isoSeq, labels: label, fn: fn}
	s.isoSeq++
	s.queue.push(e)
	return e, nil
}

// EventRef pins a pending event's exact queue position for a snapshot. The
// restore side re-injects the callback at the same (At, Seq) via InjectAt,
// reproducing the firing order bit-for-bit.
type EventRef struct {
	At    Time
	Seq   uint64
	Label string
}

// Ref captures a pending event's position, or nil if e is not pending.
func Ref(e *Event) *EventRef {
	if !e.Pending() {
		return nil
	}
	return &EventRef{At: e.at, Seq: e.seq, Label: e.labels}
}

// InjectAt schedules fn at the exact (time, seq) position recorded in ref,
// consuming no sequence number and not counting toward the scheduled total:
// the event being revived was already counted when originally scheduled, in
// the counters a restore carries over. It is the restore-side dual of Ref
// and must only be used with positions captured from a snapshot (the caller
// guarantees seq uniqueness). A nil ref is a no-op returning nil, so
// components can re-inject optional timers unconditionally.
func (s *Scheduler) InjectAt(ref *EventRef, fn func()) (*Event, error) {
	if ref == nil {
		return nil, nil
	}
	if fn == nil {
		return nil, errors.New("sim: nil event func")
	}
	if ref.At < s.now {
		return nil, fmt.Errorf("sim: inject at %v before now %v", ref.At, s.now)
	}
	e := &Event{at: ref.At, seq: ref.Seq, labels: ref.Label, fn: fn}
	s.queue.push(e)
	return e, nil
}

// KernelState is the scheduler's own snapshot: clock, counters, and both
// sequence allocators. The pending events themselves are captured by the
// components that own their callbacks (closures cannot be serialised).
type KernelState struct {
	Now       Time
	Seq       uint64
	IsoSeq    uint64
	Fired     uint64
	Scheduled uint64
	Elided    uint64
}

// ExportState captures the scheduler's clock and counters.
func (s *Scheduler) ExportState() KernelState {
	return KernelState{
		Now: s.now, Seq: s.seq, IsoSeq: s.isoSeq,
		Fired: s.fired, Scheduled: s.scheduled, Elided: s.elided,
	}
}

// ResetForRestore drops every pending event and overwrites the clock and
// counters from st. Retained handles of dropped events become permanently
// !Pending, exactly as if cancelled; the restore layer re-injects the events
// that were pending at snapshot time via InjectAt and hands components fresh
// handles. The free list survives (pooled events are never pending at a
// quiescent snapshot).
func (s *Scheduler) ResetForRestore(st KernelState) {
	for _, e := range s.queue {
		if e != nil {
			e.index = -1
			e.fn = nil
			e.fnArg = nil
			e.arg = nil
		}
	}
	s.queue = s.queue[:0]
	s.now = st.Now
	s.seq = st.Seq
	s.isoSeq = st.IsoSeq
	s.fired = st.Fired
	s.scheduled = st.Scheduled
	s.elided = st.Elided
	s.stopped = false
}

// Cancel removes a pending event from the queue. Cancelling a nil, fired, or
// already-cancelled event is a no-op, so callers can cancel unconditionally.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	s.queue.remove(e.index)
	e.index = -1
	e.fn = nil
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// SetCancel registers a cooperative cancellation probe. Run calls it between
// events (every CancelStride events, and once on entry); when it returns
// true the run stops with ErrCancelled, leaving the clock at the last fired
// event. A nil fn clears the probe. Because the probe is only consulted at
// event boundaries, a cancelled run's fired events are bit-identical to the
// same-length prefix of an uncancelled run — the property the deadline
// machinery in the scenario and service layers is built on.
func (s *Scheduler) SetCancel(fn func() bool) {
	s.cancel = fn
	s.cancelCountdown = 0
}

// SetProbe registers a progress probe sharing the cancellation stride: fn
// runs between events, every CancelStride events, whether or not a
// cancellation probe is armed. The probe must only observe (Progress,
// wall clocks) — it runs on the kernel goroutine between events, so any
// mutation of simulation state would break determinism. A nil fn clears it.
func (s *Scheduler) SetProbe(fn func()) {
	s.probe = fn
	s.cancelCountdown = 0
}

// Cancelled consults the cancellation probe directly, honouring the stride.
// Loops that drive the kernel through Step instead of Run (checkpointing,
// manual stepping tools) call it once per step to stay responsive to the
// same deadline that governs Run. The progress probe, when armed, fires on
// the same stride so observability costs nothing extra on the hot path.
func (s *Scheduler) Cancelled() bool {
	if s.cancel == nil && s.probe == nil {
		return false
	}
	if s.cancelCountdown > 0 {
		s.cancelCountdown--
		return false
	}
	s.cancelCountdown = CancelStride - 1
	if s.probe != nil {
		s.probe()
	}
	return s.cancel != nil && s.cancel()
}

// Progress is an allocation-free snapshot of the kernel's run counters,
// safe to take from a progress probe between events.
type Progress struct {
	Now       Time   // virtual clock
	Fired     uint64 // events executed
	Scheduled uint64 // events ever pushed (incl. reschedules)
	Elided    uint64 // events replayed in closed form by elision layers
	Pending   int    // events currently queued
}

// Progress returns the current kernel counters as one snapshot.
func (s *Scheduler) Progress() Progress {
	return Progress{
		Now:       s.now,
		Fired:     s.fired,
		Scheduled: s.scheduled,
		Elided:    s.elided,
		Pending:   len(s.queue),
	}
}

// SetEventHook registers fn to run after every fired event, with the
// event's virtual time, sequence number, and label. A nil fn clears the
// hook. The hook runs inside the event's panic-context wrapper, so a
// panicking hook (e.g. an invariant engine in panic mode) is also re-raised
// as an EventPanic carrying the event that exposed the breach.
func (s *Scheduler) SetEventHook(fn func(now Time, seq uint64, label string)) {
	s.onEvent = fn
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was fired.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.popMin()
	s.now = e.at
	s.fired++
	s.dispatch(e)
	if e.poolable {
		s.release(e)
	}
	return true
}

// dispatch runs one event callback (and the post-event hook) with panic
// context attached: a panic escaping either is re-raised as an *EventPanic
// identifying the event by virtual time, sequence number, and label.
// Already-wrapped panics pass through untouched.
func (s *Scheduler) dispatch(e *Event) {
	defer func() {
		if r := recover(); r != nil {
			if _, wrapped := r.(*EventPanic); wrapped {
				panic(r)
			}
			panic(&EventPanic{Time: e.at, Seq: e.seq, Label: e.labels, Value: r})
		}
	}()
	if e.fnArg != nil {
		fn, arg := e.fnArg, e.arg
		e.fnArg = nil
		e.arg = nil
		fn(arg)
	} else {
		fn := e.fn
		e.fn = nil
		fn()
	}
	if s.onEvent != nil {
		s.onEvent(s.now, e.seq, e.labels)
	}
}

// SetBatchPrep arms batch prefetching for events scheduled under label:
// when Run finds such an event at the head of the queue, it pops the whole
// consecutive run of same-labeled head events due by the horizon and calls
// prep with the batch before firing any of them. prep may fan read-only
// precomputation out across worker goroutines (keyed by each event's Owner
// tag), but must not touch the scheduler; the events then fire one by one on
// the kernel goroutine under the exact sequential discipline — same clock
// advance, same fired count, same stop/cancel probe cadence, and a pushed
// back remainder whenever a fired callback schedules something that must
// fire in between. flush is called with any popped-but-unfired remainder
// that is pushed back, so prep scratch tied to those events can be dropped
// (a foreign event may invalidate it before they fire). The callbacks of
// batch events must not Cancel or Reschedule *other* events under the same
// label: a popped event is already out of the queue, so such a cancellation
// would be a silent no-op where the sequential kernel would honour it.
// A nil prep disarms batching.
func (s *Scheduler) SetBatchPrep(label string, prep func(batch []*Event), flush func(dropped []*Event)) {
	if prep == nil {
		s.batchLabel, s.batchPrep, s.batchFlush = "", nil, nil
		return
	}
	s.batchLabel, s.batchPrep, s.batchFlush = label, prep, flush
}

// stepBatch pops and fires the maximal run of consecutive batch-labeled
// head events due by horizon. The caller (Run) has already performed this
// iteration's stopped/Cancelled checks, which cover the first event; each
// subsequent event gets exactly one pair of checks of its own, keeping the
// probe-call cadence bit-identical to the sequential loop.
func (s *Scheduler) stepBatch(horizon Time) error {
	batch := s.batchBuf[:0]
	for len(s.queue) > 0 && s.queue[0].labels == s.batchLabel && s.queue[0].at <= horizon {
		batch = append(batch, s.queue.popMin())
	}
	s.batchBuf = batch[:0] // keep the capacity for the next batch
	if len(batch) > 1 {
		s.batchPrep(batch)
	}
	for i, e := range batch {
		if i > 0 {
			if s.stopped {
				s.pushBack(batch[i:])
				return ErrStopped
			}
			if s.Cancelled() {
				s.pushBack(batch[i:])
				return ErrCancelled
			}
			// A previously fired callback scheduled an event that must fire
			// before the rest of the batch: return the remainder to the heap
			// (original at/seq, so ordering is preserved) and let the main
			// loop interleave.
			if len(s.queue) > 0 && before(s.queue[0], e) {
				s.pushBack(batch[i:])
				return nil
			}
		}
		s.now = e.at
		s.fired++
		s.dispatch(e)
		if e.poolable {
			s.release(e)
		}
	}
	return nil
}

// pushBack returns popped-but-unfired batch events to the heap and tells the
// flush callback their prep scratch is no longer trustworthy.
func (s *Scheduler) pushBack(evs []*Event) {
	for _, e := range evs {
		s.queue.push(e)
	}
	if s.batchFlush != nil {
		s.batchFlush(evs)
	}
}

// Run executes events in order until the queue drains, the clock would pass
// horizon, or Stop is called. The clock is left at min(horizon, last event
// time). It returns ErrStopped if halted by Stop, nil otherwise.
func (s *Scheduler) Run(horizon Time) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		if s.Cancelled() {
			return ErrCancelled
		}
		next := s.queue[0].at
		if next > horizon {
			break
		}
		if s.batchPrep != nil && s.queue[0].labels == s.batchLabel {
			if err := s.stepBatch(horizon); err != nil {
				return err
			}
			continue
		}
		s.Step()
	}
	if s.now < horizon && horizon < Infinity {
		s.now = horizon
	}
	return nil
}

// eventHeap is a hand-rolled binary min-heap ordered by (time, seq). The
// ordering is a strict total order (sequence numbers are unique), so any
// correct min-heap pops events in exactly the same order — replacing
// container/heap changes performance, never behavior. The sift routines are
// hole-based (shift, then place once) with the comparison inlined, which
// is the scheduler's single hottest path at scale.
type eventHeap []*Event

// before reports whether a must fire before b.
func before(a, b *Event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push appends e and restores the heap property.
func (h *eventHeap) push(e *Event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

// popMin removes and returns the earliest event, marking it fired
// (index -1).
func (h *eventHeap) popMin() *Event {
	old := *h
	e := old[0]
	n := len(old) - 1
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		old[0] = last
		last.index = 0
		h.down(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at heap position i (for Cancel/Reschedule). The
// caller owns the removed event and resets its index.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if i == n {
		return
	}
	old[i] = last
	last.index = i
	h.down(i)
	if last.index == i {
		h.up(i)
	}
}

// up sifts the event at position i toward the root.
func (h eventHeap) up(i int) {
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if !before(e, p) {
			break
		}
		h[i] = p
		p.index = i
		i = parent
	}
	h[i] = e
	e.index = i
}

// down sifts the event at position i toward the leaves.
func (h eventHeap) down(i int) {
	n := len(h)
	e := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && before(h[r], h[child]) {
			child = r
		}
		c := h[child]
		if !before(c, e) {
			break
		}
		h[i] = c
		c.index = i
		i = child
	}
	h[i] = e
	e.index = i
}
