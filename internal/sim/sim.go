// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of scheduled
// events. Events fire in (time, sequence) order, so two events scheduled for
// the same instant fire in the order they were scheduled, which makes every
// simulation run reproducible from its inputs alone.
//
// The kernel is intentionally single-threaded: all events run on the
// goroutine that calls Run. Parallelism in this repository lives one level
// up, in the sweep harness, which runs many independent kernels at once.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation. Virtual time is unrelated to wall-clock time; a Duration of
// 1.0 means one simulated second.
type Time = float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Infinity is a time later than any event a simulation can schedule.
const Infinity Time = math.MaxFloat64

// ErrStopped is returned by Run when the simulation was halted by Stop
// before reaching its horizon.
var ErrStopped = errors.New("sim: stopped")

// Event is a scheduled callback. The zero value is not useful; events are
// created by Scheduler.At and Scheduler.After.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // position in the heap, -1 once fired or cancelled
	labels string
}

// At returns the virtual time this event is scheduled to fire at.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still scheduled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// Label returns the debugging label attached at scheduling time, if any.
func (e *Event) Label() string { return e.labels }

// EventPanic wraps a panic raised by an event callback with the simulation
// context of the event that was executing: virtual time, sequence number,
// and the debugging label attached at scheduling time. Without it, a panic
// mid-run surfaces with a Go stack but no hint of *when* in virtual time or
// *which* scheduled event went wrong.
type EventPanic struct {
	// Time is the virtual time the panicking event fired at.
	Time Time
	// Seq is the event's scheduling sequence number.
	Seq uint64
	// Label is the event's debugging label ("" if none was attached).
	Label string
	// Value is the original panic value.
	Value any
}

// Error implements error so recovered EventPanics compose with errors.As.
func (p *EventPanic) Error() string {
	label := p.Label
	if label == "" {
		label = "-"
	}
	return fmt.Sprintf("sim: panic in event t=%.6f seq=%d label=%s: %v", p.Time, p.Seq, label, p.Value)
}

// Unwrap exposes the original panic value when it was an error.
func (p *EventPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Scheduler owns the virtual clock and the pending-event queue.
// The zero value is a valid scheduler positioned at time 0.
type Scheduler struct {
	queue   eventHeap
	now     Time
	seq     uint64
	stopped bool
	fired   uint64
	onEvent func(now Time, seq uint64, label string)
}

// NewScheduler returns a scheduler with its clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) is a programming error and is reported via the returned error.
func (s *Scheduler) At(t Time, fn func()) (*Event, error) {
	if fn == nil {
		return nil, errors.New("sim: nil event func")
	}
	if t < s.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", t, s.now)
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e, nil
}

// After schedules fn to run d seconds from now. A negative d is clamped to
// zero so that callers computing small deltas never schedule into the past.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	e, err := s.At(s.now+d, fn)
	if err != nil {
		// Unreachable: s.now+d >= s.now for d >= 0 and fn is checked by
		// the only caller paths that can pass nil.
		panic(err)
	}
	return e
}

// AfterLabeled is After with a debugging label attached to the event.
func (s *Scheduler) AfterLabeled(d Duration, label string, fn func()) *Event {
	e := s.After(d, fn)
	e.labels = label
	return e
}

// Cancel removes a pending event from the queue. Cancelling a nil, fired, or
// already-cancelled event is a no-op, so callers can cancel unconditionally.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
	e.fn = nil
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// SetEventHook registers fn to run after every fired event, with the
// event's virtual time, sequence number, and label. A nil fn clears the
// hook. The hook runs inside the event's panic-context wrapper, so a
// panicking hook (e.g. an invariant engine in panic mode) is also re-raised
// as an EventPanic carrying the event that exposed the breach.
func (s *Scheduler) SetEventHook(fn func(now Time, seq uint64, label string)) {
	s.onEvent = fn
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was fired.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	e.index = -1
	s.now = e.at
	fn := e.fn
	e.fn = nil
	s.fired++
	s.dispatch(e, fn)
	return true
}

// dispatch runs one event callback (and the post-event hook) with panic
// context attached: a panic escaping either is re-raised as an *EventPanic
// identifying the event by virtual time, sequence number, and label.
// Already-wrapped panics pass through untouched.
func (s *Scheduler) dispatch(e *Event, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, wrapped := r.(*EventPanic); wrapped {
				panic(r)
			}
			panic(&EventPanic{Time: e.at, Seq: e.seq, Label: e.labels, Value: r})
		}
	}()
	fn()
	if s.onEvent != nil {
		s.onEvent(s.now, e.seq, e.labels)
	}
}

// Run executes events in order until the queue drains, the clock would pass
// horizon, or Stop is called. The clock is left at min(horizon, last event
// time). It returns ErrStopped if halted by Stop, nil otherwise.
func (s *Scheduler) Run(horizon Time) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0].at
		if next > horizon {
			break
		}
		s.Step()
	}
	if s.now < horizon && horizon < Infinity {
		s.now = horizon
	}
	return nil
}

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
