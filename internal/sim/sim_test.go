package sim

import (
	"errors"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, d := range []Duration{5, 1, 3, 2, 4} {
		d := d
		s.After(d, func() { got = append(got, s.Now()) })
	}
	if err := s.Run(Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSchedulerTieBreakBySequence(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(7, func() { order = append(order, i) })
	}
	if err := s.Run(Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestSchedulerAtRejectsPast(t *testing.T) {
	s := NewScheduler()
	s.After(10, func() {})
	if err := s.Run(Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := s.At(5, func() {}); err == nil {
		t.Fatal("At in the past succeeded, want error")
	}
	if _, err := s.At(10, func() {}); err != nil {
		t.Fatalf("At(now) failed: %v", err)
	}
}

func TestSchedulerAtRejectsNilFunc(t *testing.T) {
	s := NewScheduler()
	if _, err := s.At(1, nil); err == nil {
		t.Fatal("At with nil func succeeded, want error")
	}
}

func TestSchedulerNegativeDelayClampsToNow(t *testing.T) {
	s := NewScheduler()
	s.After(3, func() {
		e := s.After(-1, func() {})
		if e.At() != 3 {
			t.Errorf("negative delay scheduled at %v, want now (3)", e.At())
		}
	})
	if err := s.Run(Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.After(1, func() { fired = true })
	if !e.Pending() {
		t.Fatal("event not pending after scheduling")
	}
	s.Cancel(e)
	if e.Pending() {
		t.Fatal("event still pending after cancel")
	}
	if err := s.Run(Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelIsIdempotentAndNilSafe(t *testing.T) {
	s := NewScheduler()
	e := s.After(1, func() {})
	s.Cancel(e)
	s.Cancel(e)
	s.Cancel(nil)
	if err := s.Run(Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCancelMiddleOfHeapKeepsOrder(t *testing.T) {
	s := NewScheduler()
	var got []Time
	record := func() { got = append(got, s.Now()) }
	s.After(1, record)
	e2 := s.After(2, record)
	s.After(3, record)
	s.After(4, record)
	s.Cancel(e2)
	if err := s.Run(Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunHorizonStopsClockAtHorizon(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.After(1, func() { fired++ })
	s.After(100, func() { fired++ })
	if err := s.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired %d events within horizon 10, want 1", fired)
	}
	if s.Now() != 10 {
		t.Fatalf("clock at %v after Run(10), want 10", s.Now())
	}
	// The late event must survive and fire on a later Run.
	if err := s.Run(200); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Fatalf("fired %d events after second run, want 2", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.After(1, func() { fired++; s.Stop() })
	s.After(2, func() { fired++ })
	if err := s.Run(Infinity); err != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("fired %d events, want 1 (stopped after first)", fired)
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	s := NewScheduler()
	var got []Time
	s.After(1, func() {
		s.After(1, func() { got = append(got, s.Now()) })
	})
	if err := s.Run(Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("nested event fired at %v, want [2]", got)
	}
}

func TestFiredCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.After(Duration(i), func() {})
	}
	if err := s.Run(Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", s.Fired())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

func TestAfterLabeled(t *testing.T) {
	s := NewScheduler()
	e := s.AfterLabeled(1, "wakeup", func() {})
	if e.Label() != "wakeup" {
		t.Fatalf("Label() = %q, want wakeup", e.Label())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the count of fired events equals the count scheduled.
func TestPropertyFiringOrderSorted(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, d := range delays {
			s.After(Duration(d)/16, func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(Infinity); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleaving of schedule/cancel never corrupts the heap:
// every non-cancelled event fires exactly once, in order.
func TestPropertyCancelNeverCorruptsHeap(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		s := NewScheduler()
		events := make([]*Event, 0, int(n))
		firedCount := 0
		for i := 0; i < int(n); i++ {
			e := s.After(rng.Float64()*100, func() { firedCount++ })
			events = append(events, e)
		}
		cancelled := 0
		for _, e := range events {
			if rng.Float64() < 0.4 {
				if e.Pending() {
					s.Cancel(e)
					cancelled++
				}
			}
		}
		if err := s.Run(Infinity); err != nil {
			return false
		}
		return firedCount == int(n)-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := NewTicker(s, 2, func(now Time) { ticks = append(ticks, now) })
	tk.Start()
	if err := s.Run(9); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{2, 4, 6, 8}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopAndRestart(t *testing.T) {
	s := NewScheduler()
	count := 0
	tk := NewTicker(s, 1, func(Time) { count++ })
	tk.Start()
	tk.Start() // double-start is a no-op
	s.After(3.5, func() { tk.Stop() })
	if err := s.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3 {
		t.Fatalf("ticked %d times before stop, want 3", count)
	}
	if tk.Active() {
		t.Fatal("ticker active after Stop")
	}
	tk.Start()
	if err := s.Run(12.8); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 5 {
		t.Fatalf("ticked %d times total after restart, want 5", count)
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tk *Ticker
	tk = NewTicker(s, 1, func(Time) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	tk.Start()
	if err := s.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 2 {
		t.Fatalf("ticked %d times, want 2", count)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		s.Step()
	}
}

func TestEventHookFiresAfterEachEvent(t *testing.T) {
	s := NewScheduler()
	type rec struct {
		now   Time
		seq   uint64
		label string
	}
	var hooks []rec
	s.SetEventHook(func(now Time, seq uint64, label string) {
		hooks = append(hooks, rec{now, seq, label})
	})
	var fired int
	s.AfterLabeled(1, "a", func() { fired++ })
	s.AfterLabeled(2, "b", func() { fired++ })
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if fired != 2 || len(hooks) != 2 {
		t.Fatalf("fired=%d hooks=%d, want 2 and 2", fired, len(hooks))
	}
	if hooks[0] != (rec{1, 0, "a"}) || hooks[1] != (rec{2, 1, "b"}) {
		t.Fatalf("hook records %+v", hooks)
	}
}

func TestEventPanicCarriesEventContext(t *testing.T) {
	s := NewScheduler()
	boom := errors.New("boom")
	s.AfterLabeled(3, "doomed", func() { panic(boom) })
	defer func() {
		r := recover()
		ep, ok := r.(*EventPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *EventPanic", r, r)
		}
		if ep.Time != 3 || ep.Label != "doomed" || ep.Value != error(boom) {
			t.Fatalf("EventPanic = %+v", ep)
		}
		if !strings.Contains(ep.Error(), "t=3.000000") || !strings.Contains(ep.Error(), "label=doomed") {
			t.Fatalf("Error() = %q", ep.Error())
		}
		if !errors.Is(ep, boom) {
			t.Error("Unwrap lost the original error")
		}
	}()
	_ = s.Run(10)
}

// TestEventHookPanicIsWrapped checks a panic raised by the hook itself —
// the invariant engine's panic mode — still gains event context.
func TestEventHookPanicIsWrapped(t *testing.T) {
	s := NewScheduler()
	s.SetEventHook(func(Time, uint64, string) { panic("hook says no") })
	s.AfterLabeled(1, "watched", func() {})
	defer func() {
		ep, ok := recover().(*EventPanic)
		if !ok || ep.Label != "watched" || ep.Value != any("hook says no") {
			t.Fatalf("recovered %+v", ep)
		}
	}()
	_ = s.Run(10)
}
