package sim

// Ticker fires a callback at a fixed virtual-time period until stopped.
// It is used for coarse periodic processes such as mobility updates and
// metric sampling.
type Ticker struct {
	sched  *Scheduler
	period Duration
	fn     func(now Time)
	ev     *Event
	active bool
	tick   func() // bound once; rearming reuses it and the Event object
}

// NewTicker creates a ticker bound to sched with the given period and
// callback. The ticker is created stopped; call Start to begin.
func NewTicker(sched *Scheduler, period Duration, fn func(now Time)) *Ticker {
	t := &Ticker{sched: sched, period: period, fn: fn}
	t.tick = func() {
		if !t.active {
			return
		}
		t.fn(t.sched.Now())
		if t.active {
			t.arm()
		}
	}
	return t
}

// Start schedules the first tick one period from now. Starting an already
// running ticker is a no-op.
func (t *Ticker) Start() {
	if t.active {
		return
	}
	t.active = true
	t.arm()
}

// Stop cancels the pending tick. The ticker may be restarted later.
func (t *Ticker) Stop() {
	t.active = false
	t.sched.Cancel(t.ev)
}

// Active reports whether the ticker is currently running.
func (t *Ticker) Active() bool { return t.active }

// arm (re)schedules the next tick, reusing the ticker's Event object: the
// ticker is its handle's exclusive owner, so Reschedule is equivalent to
// Cancel+After without the per-tick allocation.
func (t *Ticker) arm() {
	t.ev = t.sched.Reschedule(t.ev, t.period, "", t.tick)
}

// TickerState is a Ticker's snapshot: whether it runs and where its pending
// tick sits in the queue (nil when no tick is pending).
type TickerState struct {
	Active bool
	Ev     *EventRef
}

// ExportState captures the ticker for a snapshot.
func (t *Ticker) ExportState() TickerState {
	return TickerState{Active: t.active, Ev: Ref(t.ev)}
}

// RestoreState overlays a snapshot onto this ticker, re-injecting the
// pending tick at its exact recorded position. The scheduler's queue must
// already have been reset.
func (t *Ticker) RestoreState(st TickerState) error {
	t.active = st.Active
	ev, err := t.sched.InjectAt(st.Ev, t.tick)
	if err != nil {
		return err
	}
	if ev != nil {
		t.ev = ev
	}
	return nil
}
