package sim

import "fmt"

func errWheelShape(have, want int) error {
	return fmt.Errorf("sim: wheel snapshot has %d subscribers, wheel has %d", want, have)
}

// Wheel coalesces periodic upkeep from many subscribers onto a single
// pending kernel event. Where N Tickers keep N events in the heap (and pay
// N sift paths per period), a Wheel keeps exactly one: at each firing it
// runs every subscriber due at that instant, then re-arms itself at the
// earliest next due time. Subscriber due times follow the same
// floating-point accumulation as Ticker (due += period from the previous
// due time), so replacing per-subscriber Tickers with one Wheel preserves
// tick times bit-for-bit.
//
// A subscriber registered with a batch function additionally participates
// in idle fast-forward: when the kernel's next pending event lies beyond
// one or more of the subscriber's upcoming ticks, those ticks are replayed
// in one call instead of being scheduled, and the virtual clock jumps
// straight over the gap. Batched ticks are replayed strictly before the
// next pending event and never past the wheel's horizon, so anything the
// ticks mutate is observationally identical to the eager schedule: no
// other event can run inside the batched window to see intermediate state.
// Batch callbacks must not read the scheduler clock (they run early, at
// the coalescing event's time) and must not schedule events.
type Wheel struct {
	sched   *Scheduler
	horizon Time
	subs    []*WheelTicker
	ev      *Event
	armedAt Time
	armed   bool
	fire    func() // bound once; re-arming reuses it and the Event object
}

// WheelTicker is one periodic subscription on a Wheel.
type WheelTicker struct {
	wheel  *Wheel
	period Duration
	due    Time
	fn     func(now Time)
	batch  func(n int, from, to Time) int
	active bool
}

// NewWheel creates a wheel bound to sched. The horizon bounds idle
// fast-forward: batched ticks never run past it, mirroring how Run never
// fires events past its horizon. Use the run's duration; a wheel that
// never batches (no batch functions) ignores it.
func NewWheel(sched *Scheduler, horizon Time) *Wheel {
	w := &Wheel{sched: sched, horizon: horizon}
	w.fire = w.onFire
	return w
}

// Add registers a periodic subscriber and starts it: the first tick runs
// one period from now, like Ticker.Start. Subscribers due at the same
// instant run in registration order.
func (w *Wheel) Add(period Duration, fn func(now Time)) *WheelTicker {
	return w.add(period, fn, nil)
}

// AddBatchable registers a subscriber eligible for idle fast-forward.
// When the wheel can prove a run of upcoming ticks lies inside an
// event-free window (no other pending event and no other subscriber due
// inside the run, and the run ends at or before the horizon), it offers
// them to batch(n, from, to) — covering the n ticks at from, from+period,
// …, to — instead of scheduling them. batch returns how many of the n
// ticks it consumed; consumed ticks are reported to the scheduler as
// elided events, and any remainder (a subscriber may decline a window it
// cannot prove unobservable, e.g. while frames are in flight) runs
// through fn as ordinary scheduled ticks.
func (w *Wheel) AddBatchable(period Duration, fn func(now Time), batch func(n int, from, to Time) int) *WheelTicker {
	return w.add(period, fn, batch)
}

func (w *Wheel) add(period Duration, fn func(now Time), batch func(n int, from, to Time) int) *WheelTicker {
	if period <= 0 {
		panic("sim: wheel period must be positive")
	}
	if fn == nil {
		panic("sim: nil wheel subscriber func")
	}
	t := &WheelTicker{wheel: w, period: period, fn: fn, batch: batch, active: true}
	t.due = w.sched.Now() + period
	w.subs = append(w.subs, t)
	w.rearm()
	return t
}

// Stop deactivates the subscription. Other subscribers are unaffected.
func (t *WheelTicker) Stop() {
	t.active = false
	t.wheel.rearm()
}

// Active reports whether the subscription is running.
func (t *WheelTicker) Active() bool { return t.active }

// onFire runs every subscriber due now, then batches or re-arms.
func (w *Wheel) onFire() {
	w.armed = false
	now := w.sched.Now()
	for _, t := range w.subs {
		if t.active && t.due <= now {
			t.fn(now)
			t.due += t.period
		}
	}
	w.advance()
}

// advance batches eligible idle runs, then arms the wheel event at the
// earliest remaining due time.
func (w *Wheel) advance() {
	for {
		t := w.earliest()
		if t == nil {
			return // nothing active; the wheel sleeps until the next Add
		}
		if t.batch == nil {
			break
		}
		// A tick is batchable while it precedes every other pending kernel
		// event and every other subscriber's due time, and does not pass
		// the horizon. With an empty queue there is no bound to prove the
		// window idle against, so fall back to normal scheduling.
		bound, ok := w.sched.NextEventTime()
		if !ok {
			break
		}
		for _, o := range w.subs {
			if o != t && o.active && o.due < bound {
				bound = o.due
			}
		}
		from, to, n := t.due, t.due, 0
		for next := t.due; next < bound && next <= w.horizon; next += t.period {
			to = next
			n++
		}
		if n == 0 {
			break
		}
		consumed := t.batch(n, from, to)
		if consumed < 0 || consumed > n {
			panic("sim: wheel batch consumed out of range")
		}
		for i := 0; i < consumed; i++ {
			t.due += t.period
		}
		w.sched.CountElided(uint64(consumed))
		if consumed < n {
			// The subscriber declined part of the window; schedule the rest.
			break
		}
	}
	t := w.earliest()
	if t == nil {
		return
	}
	if w.armed && w.armedAt == t.due {
		return
	}
	ev, err := w.sched.RescheduleAt(w.ev, t.due, "wheel", w.fire)
	if err != nil {
		// Unreachable: due times are always >= now by construction.
		panic(err)
	}
	w.ev = ev
	w.armedAt = t.due
	w.armed = true
}

// rearm re-evaluates the wheel's pending event after membership changes.
func (w *Wheel) rearm() {
	t := w.earliest()
	if t == nil {
		if w.armed {
			w.sched.Cancel(w.ev)
			w.armed = false
		}
		return
	}
	if w.armed && w.armedAt == t.due {
		return
	}
	ev, err := w.sched.RescheduleAt(w.ev, t.due, "wheel", w.fire)
	if err != nil {
		panic(err)
	}
	w.ev = ev
	w.armedAt = t.due
	w.armed = true
}

// WheelSubState is one subscriber's snapshot: its next due time and whether
// it still runs. Periods and callbacks are rebuilt by the code that
// registered the subscriber.
type WheelSubState struct {
	Due    Time
	Active bool
}

// WheelState is a Wheel's snapshot. Subscribers are keyed by registration
// order, which the rebuilt wheel must reproduce.
type WheelState struct {
	Subs    []WheelSubState
	ArmedAt Time
	Armed   bool
	Ev      *EventRef
}

// ExportState captures the wheel for a snapshot.
func (w *Wheel) ExportState() WheelState {
	st := WheelState{ArmedAt: w.armedAt, Armed: w.armed, Ev: Ref(w.ev)}
	for _, t := range w.subs {
		st.Subs = append(st.Subs, WheelSubState{Due: t.due, Active: t.active})
	}
	return st
}

// RestoreState overlays a snapshot onto a freshly built wheel with the same
// subscribers in the same registration order, re-injecting the pending wheel
// event at its exact recorded position. The scheduler's queue must already
// have been reset.
func (w *Wheel) RestoreState(st WheelState) error {
	if len(st.Subs) != len(w.subs) {
		return errWheelShape(len(w.subs), len(st.Subs))
	}
	for i, s := range st.Subs {
		w.subs[i].due = s.Due
		w.subs[i].active = s.Active
	}
	w.armedAt = st.ArmedAt
	w.armed = st.Armed
	ev, err := w.sched.InjectAt(st.Ev, w.fire)
	if err != nil {
		return err
	}
	if ev != nil {
		w.ev = ev
	}
	return nil
}

// earliest returns the active subscriber with the smallest due time, or
// nil when none are active. Ties go to the earliest registration.
func (w *Wheel) earliest() *WheelTicker {
	var best *WheelTicker
	for _, t := range w.subs {
		if t.active && (best == nil || t.due < best.due) {
			best = t
		}
	}
	return best
}
