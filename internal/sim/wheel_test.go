package sim

import (
	"testing"
)

// TestWheelMatchesTickers is the wheel's differential property: each
// subscriber's tick-time sequence is bit-identical to what a dedicated
// Ticker produces (the same due += period floating-point accumulation),
// while the wheel keeps only one pending kernel event. Ordering at shared
// instants is the wheel's own contract (registration order) and is not
// compared — the scenario hangs one subscriber per wheel.
func TestWheelMatchesTickers(t *testing.T) {
	run := func(useWheel bool) map[string][]Time {
		s := NewScheduler()
		log := map[string][]Time{}
		sub := func(tag string) func(Time) {
			return func(now Time) { log[tag] = append(log[tag], now) }
		}
		if useWheel {
			w := NewWheel(s, 100)
			w.Add(0.7, sub("a"))
			w.Add(1.4, sub("b")) // every 2nd "a" tick coincides
			w.Add(3.1, sub("c"))
		} else {
			NewTicker(s, 0.7, sub("a")).Start()
			NewTicker(s, 1.4, sub("b")).Start()
			NewTicker(s, 3.1, sub("c")).Start()
		}
		if err := s.Run(100); err != nil {
			t.Fatal(err)
		}
		return log
	}
	wheel, tickers := run(true), run(false)
	for _, tag := range []string{"a", "b", "c"} {
		w, tk := wheel[tag], tickers[tag]
		if len(w) != len(tk) {
			t.Fatalf("%s: wheel fired %d times, ticker %d", tag, len(w), len(tk))
		}
		for i := range w {
			if w[i] != tk[i] {
				t.Fatalf("%s: fire %d at %v on the wheel, %v on the ticker", tag, i, w[i], tk[i])
			}
		}
	}
}

// TestWheelKeepsOneEvent verifies the coalescing claim: N subscribers cost
// one scheduled event per firing instant, not N standing events.
func TestWheelKeepsOneEvent(t *testing.T) {
	s := NewScheduler()
	w := NewWheel(s, 10)
	for i := 0; i < 8; i++ {
		w.Add(1, func(Time) {})
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	// 10 firing instants (t=1..10), each one kernel event re-armed in
	// place; the 8 subscribers share them.
	if got := s.Fired(); got != 10 {
		t.Fatalf("fired %d events; want 10 (one per instant)", got)
	}
}

// TestWheelBatchesIdleRuns verifies idle fast-forward: a batchable
// subscriber's ticks inside an event-free gap collapse into one batch call
// bounded strictly by the next pending event, the elided count matches what
// an eager run would have fired, and once the queue holds no other event to
// prove a window idle against, ticks fall back to live scheduling.
func TestWheelBatchesIdleRuns(t *testing.T) {
	s := NewScheduler()
	w := NewWheel(s, 50)
	var ticked, batched int
	var spans [][2]Time
	w.AddBatchable(1,
		func(Time) { ticked++ },
		func(n int, from, to Time) int {
			batched += n
			spans = append(spans, [2]Time{from, to})
			return n
		})
	// One distant event bounds the batch; past it the queue is empty, so
	// the remaining ticks must run live (no bound to prove idleness).
	if _, err := s.At(20.5, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(50); err != nil {
		t.Fatal(err)
	}
	if ticked+batched != 50 {
		t.Fatalf("covered %d ticks (%d live, %d batched); want 50", ticked+batched, ticked, batched)
	}
	// The tick at t=1 fires live (the wheel's own first event), ticks 2..20
	// batch under the t=20.5 bound, and 21..50 fire live over the now-empty
	// queue.
	if batched != 19 || ticked != 31 {
		t.Fatalf("batched %d ticks, live %d; want 19 batched, 31 live (spans %v)", batched, ticked, spans)
	}
	if got := s.Elided(); got != 19 {
		t.Fatalf("scheduler elided count %d; want 19", got)
	}
	if len(spans) != 1 || spans[0] != [2]Time{2, 20} {
		t.Fatalf("batch spans %v; want [[2 20]]", spans)
	}
}

// TestWheelBatchDecline verifies the partial-consumption contract: a batch
// returning 0 falls back to live ticks without losing any, and the elided
// count only reflects what was actually consumed.
func TestWheelBatchDecline(t *testing.T) {
	s := NewScheduler()
	w := NewWheel(s, 12)
	var ticked, offered int
	w.AddBatchable(1,
		func(Time) { ticked++ },
		func(n int, _, _ Time) int {
			offered += n
			return 0
		})
	// A far event keeps the queue non-empty so windows keep being offered.
	if _, err := s.At(11.5, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(12); err != nil {
		t.Fatal(err)
	}
	if ticked != 12 || s.Elided() != 0 {
		t.Fatalf("declining batch: %d live ticks, %d elided; want 12, 0", ticked, s.Elided())
	}
	if offered == 0 {
		t.Fatal("batch was never offered a window")
	}
}

// TestWheelBatchPartialConsume verifies that a batch consuming only part of
// its window advances exactly that many due times, counts exactly that many
// elisions, and leaves the remainder to fire as live ticks — no tick lost
// or duplicated.
func TestWheelBatchPartialConsume(t *testing.T) {
	s := NewScheduler()
	w := NewWheel(s, 30)
	var live []Time
	var consumed int
	w.AddBatchable(1,
		func(now Time) { live = append(live, now) },
		func(n int, _, _ Time) int {
			take := n / 2
			consumed += take
			return take
		})
	if _, err := s.At(25.5, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(30); err != nil {
		t.Fatal(err)
	}
	if len(live)+consumed != 30 {
		t.Fatalf("covered %d ticks (%d live, %d batched); want 30", len(live)+consumed, len(live), consumed)
	}
	if uint64(consumed) != s.Elided() {
		t.Fatalf("batch consumed %d but scheduler counted %d elided", consumed, s.Elided())
	}
	if consumed == 0 {
		t.Fatal("no window was ever partially consumed")
	}
	for i := 1; i < len(live); i++ {
		if live[i] <= live[i-1] {
			t.Fatalf("live ticks out of order: %v", live)
		}
	}
}

// TestWheelBatchSkipsOtherSubscribers verifies a batch never jumps a
// non-batchable subscriber's due time.
func TestWheelBatchSkipsOtherSubscribers(t *testing.T) {
	s := NewScheduler()
	w := NewWheel(s, 9)
	var fast, slow []Time
	var spans [][2]Time
	w.AddBatchable(1,
		func(now Time) { fast = append(fast, now) },
		func(n int, from, to Time) int {
			spans = append(spans, [2]Time{from, to})
			for i := 0; i < n; i++ {
				fast = append(fast, from+float64(i))
			}
			return n
		})
	w.Add(4, func(now Time) { slow = append(slow, now) })
	// Keep the queue non-empty so batching is in play throughout.
	if _, err := s.At(8.5, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(9); err != nil {
		t.Fatal(err)
	}
	if len(fast) != 9 {
		t.Fatalf("fast subscriber covered %d ticks; want 9 (%v)", len(fast), fast)
	}
	if len(slow) != 2 {
		t.Fatalf("slow subscriber fired %d times; want 2 (%v)", len(slow), slow)
	}
	for i := 1; i < len(fast); i++ {
		if fast[i] <= fast[i-1] {
			t.Fatalf("fast ticks out of order: %v", fast)
		}
	}
	// No batch window may contain a slow due time (4, 8): the slow
	// subscriber must observe those instants live.
	for _, sp := range spans {
		for _, due := range []Time{4, 8} {
			if sp[0] <= due && due <= sp[1] {
				t.Fatalf("batch span %v crosses slow subscriber due %v", sp, due)
			}
		}
	}
	if len(spans) == 0 {
		t.Fatal("fast subscriber never batched")
	}
}

// TestWheelStopMidRun verifies Stop removes a subscriber without
// disturbing the others' schedules.
func TestWheelStopMidRun(t *testing.T) {
	s := NewScheduler()
	w := NewWheel(s, 10)
	var a, b int
	ta := w.Add(1, func(Time) { a++ })
	w.Add(1, func(Time) { b++ })
	if _, err := s.At(5.5, func() { ta.Stop() }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if a != 5 || b != 10 {
		t.Fatalf("a fired %d (want 5), b fired %d (want 10)", a, b)
	}
	if ta.Active() {
		t.Fatal("stopped subscription still active")
	}
}

// TestRescheduleAtReusesEvent covers the kernel primitive behind the wheel
// and the coalesced-cycle timers: absolute-time rescheduling that errors
// on past times and reuses the handle.
func TestRescheduleAtReusesEvent(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	fn := func() { fired = append(fired, s.Now()) }
	ev, err := s.RescheduleAt(nil, 2, "x", fn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(1, func() {
		// Re-aim the pending event from inside the run.
		if _, err := s.RescheduleAt(ev, 3, "x", fn); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired at %v; want exactly once at t=3", fired)
	}
	if _, err := s.RescheduleAt(ev, s.Now()-1, "x", fn); err == nil {
		t.Fatal("RescheduleAt accepted a past time")
	}
}

// TestCountersAndNextEventTime covers the scheduled/fired/elided counters
// and the queue-peek used to bound batches.
func TestCountersAndNextEventTime(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("empty scheduler reported a next event")
	}
	if _, err := s.At(4, func() {}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(2, func() {}); err != nil {
		t.Fatal(err)
	}
	if next, ok := s.NextEventTime(); !ok || next != 2 {
		t.Fatalf("NextEventTime = %v, %v; want 2, true", next, ok)
	}
	s.CountElided(7)
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.Scheduled() != 2 || s.Fired() != 2 || s.Elided() != 7 {
		t.Fatalf("counters scheduled=%d fired=%d elided=%d; want 2, 2, 7",
			s.Scheduled(), s.Fired(), s.Elided())
	}
}
