// Package simrand provides deterministic, splittable random-number streams
// for simulations.
//
// A simulation run owns one Source seeded from the scenario seed. Every
// consumer (each node's mobility, each node's MAC backoff, the traffic
// generator, ...) derives its own independent stream via Split, keyed by a
// stable label. Because streams are derived from (seed, label) only, adding
// a new consumer does not perturb the draws seen by existing consumers,
// which keeps regression comparisons meaningful across code changes.
package simrand

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Source is a deterministic random stream. It wraps a PCG generator and adds
// the distribution helpers the simulator needs.
type Source struct {
	rng *rand.Rand
	pcg *rand.PCG
}

// New returns a stream derived from the given 64-bit seed.
func New(seed uint64) *Source {
	pcg := rand.NewPCG(seed, 0x9e3779b97f4a7c15)
	return &Source{rng: rand.New(pcg), pcg: pcg}
}

// Split derives an independent stream keyed by label. Splitting with the
// same label twice yields streams with identical draws; use distinct labels
// per consumer ("node/17/mobility", "traffic", ...).
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label)) // fnv's Write never errors
	mix := h.Sum64()
	// Mix the label hash with fresh draws so sibling splits differ even for
	// colliding labels, while remaining a pure function of the parent state.
	pcg := rand.NewPCG(s.rng.Uint64()^mix, mix)
	return &Source{rng: rand.New(pcg), pcg: pcg}
}

// State captures the stream position for a later Restore. rand.Rand keeps
// no state of its own (every helper pulls directly from the generator), so
// the PCG snapshot alone pins down all future draws.
type State []byte

// State returns an opaque snapshot of the stream position. Speculative
// consumers (the idle-span planner) snapshot before drawing ahead, and on
// early abort Restore + re-draw the prefix actually consumed, keeping the
// stream bit-identical to one that never drew ahead.
func (s *Source) State() State {
	b, err := s.pcg.MarshalBinary()
	if err != nil {
		// PCG's MarshalBinary cannot fail; keep the invariant visible.
		panic(err)
	}
	return b
}

// Restore rewinds the stream to a snapshot taken by State.
func (s *Source) Restore(st State) {
	if err := s.pcg.UnmarshalBinary(st); err != nil {
		panic(err)
	}
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand/v2 semantics.
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// SlotIn returns a uniform integer in [1, n]. Used for contention slots,
// which the paper indexes from 1. n < 1 is treated as 1.
func (s *Source) SlotIn(n int) int {
	if n < 1 {
		return 1
	}
	return 1 + s.rng.IntN(n)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Exp returns an exponentially distributed draw with the given mean.
// It is used for Poisson inter-arrival times. A non-positive mean returns 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := s.rng.Float64()
	// Guard the log: Float64 is in [0,1); 1-u is in (0,1].
	return -mean * math.Log(1-u)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Uint64 returns a raw 64-bit draw.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }
