package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/64 draws", same)
	}
}

func TestSplitIsDeterministicAndIndependent(t *testing.T) {
	s1 := New(99).Split("node/1/mobility")
	s2 := New(99).Split("node/1/mobility")
	s3 := New(99).Split("node/2/mobility")
	diff := false
	for i := 0; i < 50; i++ {
		v1, v2, v3 := s1.Uint64(), s2.Uint64(), s3.Uint64()
		if v1 != v2 {
			t.Fatal("same-label splits diverged")
		}
		if v1 != v3 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different-label splits produced identical streams")
	}
}

func TestSplitDoesNotPerturbSiblingOrder(t *testing.T) {
	// Splitting consumes parent draws, so sibling streams depend on split
	// order; the guarantee tested here is that the same ordered sequence of
	// splits reproduces the same streams.
	p1, p2 := New(5), New(5)
	a1 := p1.Split("a")
	b1 := p1.Split("b")
	a2 := p2.Split("a")
	b2 := p2.Split("b")
	for i := 0; i < 20; i++ {
		if a1.Uint64() != a2.Uint64() || b1.Uint64() != b2.Uint64() {
			t.Fatal("replayed split sequence diverged")
		}
	}
}

func TestUniformBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestSlotInBounds(t *testing.T) {
	s := New(4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.SlotIn(8)
		if v < 1 || v > 8 {
			t.Fatalf("SlotIn(8) = %d out of [1,8]", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("SlotIn(8) hit %d distinct slots over 1000 draws, want 8", len(seen))
	}
	if got := s.SlotIn(0); got != 1 {
		t.Fatalf("SlotIn(0) = %d, want 1", got)
	}
	if got := s.SlotIn(-5); got != 1 {
		t.Fatalf("SlotIn(-5) = %d, want 1", got)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(negative) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(>1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(6)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) empirical rate %v, want ~0.3", p)
	}
}

func TestExpMeanAndPositivity(t *testing.T) {
	s := New(7)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(120)
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp(120) produced %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-120) > 3 {
		t.Fatalf("Exp(120) empirical mean %v, want ~120", mean)
	}
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should return 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm(10) = %v is not a permutation", p)
		}
		seen[v] = true
	}
}

// Property: Uniform never escapes its bounds for any ordered pair.
func TestPropertyUniformInRange(t *testing.T) {
	s := New(11)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true // out of scope
		}
		if math.Abs(lo) > 1e150 || math.Abs(hi) > 1e150 {
			return true // extent would overflow float64; out of scope
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return s.Uniform(lo, hi) == lo
		}
		v := s.Uniform(lo, hi)
		return v >= lo && v < hi || (hi-lo) < 1e-300 // underflow tolerance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
