// Package snapshot defines the versioned, deterministic serialization of a
// complete simulation: the kernel's event queue positions and counters, the
// shared upkeep wheel, the radio medium and its loss processes, every
// node's protocol/MAC/radio/energy state, the traffic and mobility
// processes, fault-injection progress, the metrics and invariant ledgers,
// telemetry counters, and all RNG stream positions.
//
// A snapshot is only taken at a quiescent instant — no frames in flight, no
// MAC exchange mid-flight, no start jitter pending — so in-flight state
// never needs serializing. Restoring a snapshot rebuilds the object graph
// from the embedded configuration and overlays this state; the continued
// run is bit-identical to one that never paused.
//
// The encoding is a fixed header (magic, version) followed by a gob stream.
// Every map-shaped structure is carried as a sorted slice, so encoding the
// same state twice yields identical bytes.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"dftmsn/internal/core"
	"dftmsn/internal/faults"
	"dftmsn/internal/invariants"
	"dftmsn/internal/metrics"
	"dftmsn/internal/mobility"
	"dftmsn/internal/radio"
	"dftmsn/internal/sim"
	"dftmsn/internal/simrand"
	"dftmsn/internal/telemetry"
)

// magic identifies a snapshot stream; Version is the format version. Any
// change to the state structs below is a format change and must bump
// Version — old snapshots are rejected, never misread.
const (
	magic   = "DFTMSNSNAP"
	Version = 1
)

// TrafficState is one sensor's Poisson arrival process: its RNG stream and
// the pending arrival event (nil once the process ended).
type TrafficState struct {
	RNG simrand.State
	Ev  *sim.EventRef
}

// TelemetryState carries the metrics registry values and the sampler's
// emitted rows; present only when the run has telemetry armed.
type TelemetryState struct {
	Registry telemetry.RegistryState
	Sampler  telemetry.SamplerState
}

// Snapshot is the complete state of a simulation at one quiescent instant.
// Config holds the canonical JSON of the scenario configuration (the same
// schema scenario.SaveConfig writes), so a snapshot is self-describing:
// restore rebuilds the object graph from it and overlays the state.
type Snapshot struct {
	// Time is the virtual-time instant the snapshot was taken at.
	Time float64
	// Config is the canonical JSON scenario configuration.
	Config []byte
	// Kernel is the scheduler's clock and counters.
	Kernel sim.KernelState
	// Wheel is the shared upkeep wheel (mobility ticking).
	Wheel sim.WheelState
	// Medium is the radio channel: counters, loss processes, pending burst
	// flip.
	Medium radio.MediumState
	// Nodes holds every node's state, sinks first then sensors, in ID
	// order — the order scenario construction creates them.
	Nodes []core.NodeState
	// Mobility is the zone-walk state of every walker.
	Mobility mobility.ZoneWalkState
	// Traffic holds the per-sensor Poisson arrival processes, in sensor
	// order.
	Traffic []TrafficState
	// NextMsgID is the last message ID handed out.
	NextMsgID uint64
	// Injector is the fault-injection progress; nil when the run has no
	// injector.
	Injector *faults.State
	// Collector is the per-message metrics ledger.
	Collector metrics.CollectorState
	// Invariants is the runtime invariant engine; nil when it is off.
	Invariants *invariants.EngineState
	// Telemetry is the metrics registry and sampler; nil when telemetry is
	// off.
	Telemetry *TelemetryState
}

// Encode writes the snapshot to w: magic, version, then the gob payload.
func Encode(w io.Writer, snap *Snapshot) error {
	if snap == nil {
		return errors.New("snapshot: nil snapshot")
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	var ver [2]byte
	binary.BigEndian.PutUint16(ver[:], Version)
	if _, err := w.Write(ver[:]); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	return nil
}

// Decode reads a snapshot from r. Corrupted or truncated input returns an
// error — never a panic — and unknown versions are rejected.
func Decode(r io.Reader) (snap *Snapshot, err error) {
	// The gob decoder is driven by length fields from the input; hostile
	// input can trip internal panics. Contain them.
	defer func() {
		if p := recover(); p != nil {
			snap = nil
			err = fmt.Errorf("snapshot: corrupt input: %v", p)
		}
	}()
	head := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("snapshot: header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, errors.New("snapshot: bad magic; not a snapshot file")
	}
	if v := binary.BigEndian.Uint16(head[len(magic):]); v != Version {
		return nil, fmt.Errorf("snapshot: version %d, this build reads version %d", v, Version)
	}
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return &s, nil
}

// EncodeBytes encodes the snapshot into a byte slice.
func EncodeBytes(snap *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBytes decodes a snapshot from a byte slice.
func DecodeBytes(b []byte) (*Snapshot, error) {
	return Decode(bytes.NewReader(b))
}

// Save writes the snapshot to a file.
func Save(path string, snap *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := Encode(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot from a file.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return Decode(f)
}
