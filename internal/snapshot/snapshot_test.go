package snapshot

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"dftmsn/internal/core"
	"dftmsn/internal/faults"
	"dftmsn/internal/mobility"
	"dftmsn/internal/radio"
	"dftmsn/internal/routing"
	"dftmsn/internal/sim"
	"dftmsn/internal/simrand"
)

// testSnapshot builds a synthetic but representative snapshot: pending event
// refs, RNG stream states, neighbour tables, fault progress.
func testSnapshot() *Snapshot {
	rng := simrand.New(42)
	return &Snapshot{
		Time:   123.456,
		Config: []byte(`{"scheme":"OPT"}`),
		Kernel: sim.KernelState{Now: 123.456, Seq: 9001, IsoSeq: 1 << 62, Fired: 8500, Scheduled: 9000, Elided: 250},
		Wheel:  sim.WheelState{ArmedAt: 124, Armed: true, Ev: &sim.EventRef{At: 124, Seq: 8999}},
		Medium: radio.MediumState{
			Stats:   radio.StatsState{Collisions: 3, ControlBits: 1000},
			LossRNG: rng.State(),
		},
		Nodes: []core.NodeState{
			{
				ID:        0,
				Strategy:  routing.State{Kind: "sink", Delivered: 7},
				Neighbors: []core.NeighborState{{ID: 3, Xi: 0.5, SeenAt: 120}, {ID: 4, Xi: 0.25, SeenAt: 122}},
				RNG:       rng.State(),
				Started:   true,
				RetryEvs:  []*sim.EventRef{{At: 125, Seq: 8990}},
			},
			{
				ID:       3,
				Strategy: routing.State{Kind: "FAD", Xi: 0.4, TxEver: true},
				RNG:      rng.State(),
				Plan: &core.IdleSpanState{
					Starts:  []float64{124, 126},
					Listens: []float64{124.5, 126.5},
					Ends:    []float64{125, 127},
					Sigmas:  []int{3, 4},
					RNGSnap: rng.State(),
				},
				PlanEndEv: &sim.EventRef{At: 127, Seq: 8991, Label: "idle-span"},
			},
		},
		Mobility:  mobility.ZoneWalkState{},
		Traffic:   []TrafficState{{RNG: rng.State(), Ev: &sim.EventRef{At: 130, Seq: 8992}}, {RNG: rng.State()}},
		NextMsgID: 55,
		Injector: &faults.State{
			Armed:   true,
			Churned: []bool{false, true},
			Chains:  []faults.ChainState{{Victim: 1, Next: 1, RNG: rng.State(), Ev: &sim.EventRef{At: 140, Seq: 1<<62 + 3, Label: "fault-recover"}}},
			RNG:     rng.State(),
		},
	}
}

func TestEncodeDeterministic(t *testing.T) {
	snap := testSnapshot()
	a, err := EncodeBytes(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeBytes(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding the same snapshot twice produced different bytes")
	}
}

func TestRoundTrip(t *testing.T) {
	snap := testSnapshot()
	blob, err := EncodeBytes(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("round trip changed the snapshot:\nin:  %+v\nout: %+v", snap, got)
	}
	// Bit-identity through the codec: re-encoding the decoded snapshot must
	// reproduce the original bytes exactly.
	blob2, err := EncodeBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoding a decoded snapshot changed the bytes")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	blob, err := EncodeBytes(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(blob); n += 1 + n/8 {
		if _, err := DecodeBytes(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if _, err := DecodeBytes(bad); err == nil {
		t.Fatal("bad magic decoded without error")
	}
	// Unknown version.
	bad = append([]byte(nil), blob...)
	bad[len(magic)] = 0xFF
	if _, err := DecodeBytes(bad); err == nil {
		t.Fatal("unknown version decoded without error")
	}
	// Flipped payload bytes: decode must return an error or a snapshot,
	// never panic.
	for i := len(magic) + 2; i < len(blob); i += 7 {
		bad = append([]byte(nil), blob...)
		bad[i] ^= 0x55
		_, _ = DecodeBytes(bad)
	}
}

func TestSaveLoad(t *testing.T) {
	snap := testSnapshot()
	path := filepath.Join(t.TempDir(), "snap.dft")
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatal("file round trip changed the snapshot")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.dft")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// FuzzDecode hammers the codec with arbitrary input: Decode must return an
// error or a snapshot, and a successfully decoded snapshot must re-encode
// cleanly — never panic, never hang.
func FuzzDecode(f *testing.F) {
	blob, err := EncodeBytes(testSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Add([]byte("DFTMSNSNAP\x00\x01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeBytes(data)
		if err != nil {
			return
		}
		if _, err := EncodeBytes(snap); err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
	})
}
