package sweep

import (
	"errors"
	"strings"
	"testing"

	"dftmsn/internal/sim"
)

// TestExperimentCancel checks that a fired probe aborts the sweep with an
// error wrapping sim.ErrCancelled instead of running every point.
func TestExperimentCancel(t *testing.T) {
	e := tinyExperiment()
	e.Cancel = func() bool { return true }
	_, err := e.Run(1)
	if !errors.Is(err, sim.ErrCancelled) {
		t.Fatalf("Run = %v, want an error wrapping sim.ErrCancelled", err)
	}
}

// TestExperimentNilCancelCompletes pins that the zero value keeps the sweep
// unchanged.
func TestExperimentNilCancelCompletes(t *testing.T) {
	table, err := tinyExperiment().Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := table.Cell(0, 0).DeliveryRatio.N(); got != 2 {
		t.Fatalf("point aggregated %d runs, want 2", got)
	}
}

// TestGuard pins the exported panic-to-error recovery.
func TestGuard(t *testing.T) {
	if err := Guard(func() error { return nil }); err != nil {
		t.Fatalf("Guard(ok) = %v", err)
	}
	err := Guard(func() error { panic("poison") })
	if err == nil || !strings.Contains(err.Error(), "poison") {
		t.Fatalf("Guard(panic) = %v, want error naming the panic value", err)
	}
}
