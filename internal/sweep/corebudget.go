package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// CoreBudget splits a fixed core budget between concurrent simulation runs
// and each run's intra-run shards — e.g. 16 cores as 4 runs × 4 shards —
// replacing the either/or of "all cores to the sweep pool" versus "all
// cores to one kernel's ShardPool". It is a counting token pool: every run
// Acquires its shard count before building its kernel and Releases it
// after, so the sum of live shards never exceeds the budget no matter how
// many sweeps, campaigns, or service jobs share it. Acquisition order never
// affects results — Config.Shards is runtime-only and every shard count is
// bit-identical — so the pool needs no fairness guarantees beyond not
// starving (Release wakes all waiters).
type CoreBudget struct {
	total     int
	runShards int

	mu    sync.Mutex
	cond  *sync.Cond
	inUse int
	peak  int
}

// NewCoreBudget creates a budget of total cores handing out runShards cores
// per run. total <= 0 means GOMAXPROCS; runShards is clamped to [1, total].
func NewCoreBudget(total, runShards int) *CoreBudget {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	if runShards < 1 {
		runShards = 1
	}
	if runShards > total {
		runShards = total
	}
	b := &CoreBudget{total: total, runShards: runShards}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Total returns the budget's core count.
func (b *CoreBudget) Total() int { return b.total }

// RunShards returns the default shard count handed to each run.
func (b *CoreBudget) RunShards() int { return b.runShards }

// Workers returns how many runs can hold their default grant concurrently —
// the worker-pool size a sweep or service should use with this budget.
// Workers() × RunShards() <= Total(), so a pool of this size never blocks on
// default grants and never oversubscribes.
func (b *CoreBudget) Workers() int {
	w := b.total / b.runShards
	if w < 1 {
		w = 1
	}
	return w
}

// Acquire blocks until n cores are free and takes them, returning the grant
// — the Config.Shards value the run should use. n <= 0 asks for the per-run
// default; n larger than the budget is clamped to it (a single run may use
// the whole machine, never more).
func (b *CoreBudget) Acquire(n int) int {
	if n <= 0 {
		n = b.runShards
	}
	if n > b.total {
		n = b.total
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.inUse+n > b.total {
		b.cond.Wait()
	}
	b.inUse += n
	if b.inUse > b.peak {
		b.peak = b.inUse
	}
	return n
}

// Release returns a grant taken by Acquire.
func (b *CoreBudget) Release(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inUse -= n
	if b.inUse < 0 {
		panic(fmt.Sprintf("sweep: CoreBudget over-released (%d cores in use)", b.inUse))
	}
	b.cond.Broadcast()
}

// InUse returns the cores currently held. For accounting assertions.
func (b *CoreBudget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// Peak returns the high-water mark of cores held at once. A test that
// drives a budget through a full sweep asserts Peak() <= Total() — the
// no-oversubscription pin.
func (b *CoreBudget) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}
