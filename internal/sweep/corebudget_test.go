package sweep

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestCoreBudgetAccounting(t *testing.T) {
	b := NewCoreBudget(16, 4)
	if b.Total() != 16 || b.RunShards() != 4 || b.Workers() != 4 {
		t.Fatalf("16/4 budget: total %d shards %d workers %d, want 16/4/4", b.Total(), b.RunShards(), b.Workers())
	}
	// Defaults and clamps.
	if d := NewCoreBudget(0, 0); d.Total() < 1 || d.RunShards() != 1 {
		t.Fatalf("zero-value budget: total %d shards %d", d.Total(), d.RunShards())
	}
	if c := NewCoreBudget(4, 99); c.RunShards() != 4 {
		t.Fatalf("oversized runShards not clamped: %d", c.RunShards())
	}
	if c := NewCoreBudget(3, 2); c.Workers() != 1 {
		t.Fatalf("3/2 budget workers %d, want 1", c.Workers())
	}

	// The default grant is RunShards; explicit asks clamp to the total.
	if got := b.Acquire(0); got != 4 {
		t.Fatalf("Acquire(0) = %d, want default grant 4", got)
	}
	b.Release(4)
	if got := b.Acquire(99); got != 16 {
		t.Fatalf("Acquire(99) = %d, want total clamp 16", got)
	}
	if b.InUse() != 16 {
		t.Fatalf("InUse = %d, want 16", b.InUse())
	}

	// Full budget: a further Acquire must block until a Release frees room.
	got := make(chan int, 1)
	go func() { got <- b.Acquire(1) }()
	select {
	case g := <-got:
		t.Fatalf("Acquire(1) returned %d from a full budget", g)
	case <-time.After(50 * time.Millisecond):
	}
	b.Release(4)
	select {
	case g := <-got:
		if g != 1 {
			t.Fatalf("unblocked Acquire(1) = %d", g)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire(1) still blocked after Release")
	}
	b.Release(12) // the rest of the Acquire(99) grant
	b.Release(1)  // the unblocked goroutine's grant
	if b.InUse() != 0 {
		t.Fatalf("InUse = %d after releasing everything, want 0", b.InUse())
	}
	if b.Peak() != 16 {
		t.Fatalf("Peak = %d, want 16", b.Peak())
	}

	// Over-release is a loud bug, not silent capacity inflation.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("over-release did not panic")
			}
		}()
		b.Release(1)
	}()
}

// TestCoreBudgetExperimentDifferential is the CoreBudget acceptance pin: a
// sweep run under a 16-core budget at 4 runs × 4 shards must produce
// bit-identical per-point results to the plain sequential sweep, and the
// pool accounting must show the budget was never oversubscribed and fully
// returned.
func TestCoreBudgetExperimentDifferential(t *testing.T) {
	seq, err := tinyExperiment().Run(1)
	if err != nil {
		t.Fatal(err)
	}
	e := tinyExperiment()
	e.Budget = NewCoreBudget(16, 4)
	bud, err := e.Run(0) // 0 workers: sized from the budget (16/4 = 4)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := bud.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustCanon(t, sj), mustCanon(t, bj)) {
		t.Fatalf("budgeted sweep diverged from sequential:\nseq: %s\nbud: %s", sj, bj)
	}
	if got := e.Budget.Peak(); got > 16 {
		t.Fatalf("budget oversubscribed: peak %d > 16", got)
	}
	if got := e.Budget.Peak(); got < 4 {
		t.Fatalf("budget never acquired a full grant: peak %d", got)
	}
	if got := e.Budget.InUse(); got != 0 {
		t.Fatalf("budget leaked: %d cores still held", got)
	}
}

// mustCanon re-marshals JSON so formatting differences can't mask or fake a
// divergence.
func mustCanon(t *testing.T, raw []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
