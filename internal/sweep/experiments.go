package sweep

import (
	"fmt"

	"dftmsn/internal/core"
	"dftmsn/internal/faults"
	"dftmsn/internal/scenario"
)

// Options scales the predefined experiments. The paper's full fidelity is
// PaperOptions; QuickOptions shrinks runs for interactive use and
// benchmarks while preserving the qualitative shapes.
type Options struct {
	// DurationSeconds is the simulated time per run.
	DurationSeconds float64
	// Runs is the number of seeds averaged per point.
	Runs int
	// Sensors is the sensor population (except in the density sweep,
	// which sweeps it).
	Sensors int
	// BaseSeed offsets run seeds.
	BaseSeed uint64
}

// PaperOptions reproduces the paper's scale: 25 000 s, 100 sensors,
// averaged over several runs ("we run the simulation multiple times and
// average the collected results").
func PaperOptions() Options {
	return Options{DurationSeconds: 25_000, Runs: 3, Sensors: 100, BaseSeed: 1}
}

// QuickOptions is a reduced-scale preset whose curves keep the paper's
// qualitative shape; used by default in cmd/figures and the benchmarks.
func QuickOptions() Options {
	return Options{DurationSeconds: 6_000, Runs: 2, Sensors: 100, BaseSeed: 1}
}

func (o Options) validate() error {
	if o.DurationSeconds <= 0 || o.Runs < 1 || o.Sensors < 1 {
		return fmt.Errorf("sweep: invalid options %+v", o)
	}
	return nil
}

// Fig2 returns the paper's Figure 2 experiment: the four protocol variants
// swept over the number of sink nodes. The same table serves Fig. 2(a)
// delivery ratio, Fig. 2(b) average nodal power, and Fig. 2(c) delivery
// delay — select the metric when formatting.
func Fig2(o Options) (Experiment, error) {
	if err := o.validate(); err != nil {
		return Experiment{}, err
	}
	variants := make([]Variant, 0, 4)
	for _, sch := range core.Schemes() {
		sch := sch
		variants = append(variants, Variant{
			Name: sch.String(),
			Build: func(x float64) (scenario.Config, error) {
				cfg := scenario.DefaultConfig(sch)
				cfg.NumSensors = o.Sensors
				cfg.DurationSeconds = o.DurationSeconds
				cfg.NumSinks = int(x)
				return cfg, nil
			},
		})
	}
	return Experiment{
		Name:     "fig2",
		XLabel:   "sinks",
		Xs:       []float64{1, 2, 3, 4, 5},
		Variants: variants,
		Runs:     o.Runs,
		BaseSeed: o.BaseSeed,
	}, nil
}

// Density returns the §5 narrated node-density experiment: sensor count
// swept at the default 3 sinks. The paper reports that higher density
// overloads the sink-adjacent nodes, lowering the delivery ratio.
func Density(o Options) (Experiment, error) {
	if err := o.validate(); err != nil {
		return Experiment{}, err
	}
	variants := make([]Variant, 0, 4)
	for _, sch := range core.Schemes() {
		sch := sch
		variants = append(variants, Variant{
			Name: sch.String(),
			Build: func(x float64) (scenario.Config, error) {
				cfg := scenario.DefaultConfig(sch)
				cfg.DurationSeconds = o.DurationSeconds
				cfg.NumSensors = int(x)
				return cfg, nil
			},
		})
	}
	return Experiment{
		Name:     "density",
		XLabel:   "sensors",
		Xs:       []float64{50, 100, 150, 200},
		Variants: variants,
		Runs:     o.Runs,
		BaseSeed: o.BaseSeed,
	}, nil
}

// Speed returns the §5 narrated nodal-speed experiment: the maximum sensor
// speed swept at the default population. The paper reports rising delivery
// ratios and falling delays as speed increases.
func Speed(o Options) (Experiment, error) {
	if err := o.validate(); err != nil {
		return Experiment{}, err
	}
	variants := make([]Variant, 0, 4)
	for _, sch := range core.Schemes() {
		sch := sch
		variants = append(variants, Variant{
			Name: sch.String(),
			Build: func(x float64) (scenario.Config, error) {
				cfg := scenario.DefaultConfig(sch)
				cfg.DurationSeconds = o.DurationSeconds
				cfg.NumSensors = o.Sensors
				cfg.MaxSpeed = x
				return cfg, nil
			},
		})
	}
	return Experiment{
		Name:     "speed",
		XLabel:   "maxspeed",
		Xs:       []float64{1, 2.5, 5, 7.5, 10},
		Variants: variants,
		Runs:     o.Runs,
		BaseSeed: o.BaseSeed,
	}, nil
}

// Ablation returns this reproduction's own experiment: OPT with each §4
// optimization disabled in turn, over the sink sweep, quantifying what the
// adaptive listening period (Eq. 13), the adaptive contention window
// (Eq. 14), and the adaptive sleeping period (Eq. 6) each contribute.
func Ablation(o Options) (Experiment, error) {
	if err := o.validate(); err != nil {
		return Experiment{}, err
	}
	build := func(mutate func(*core.Params)) func(x float64) (scenario.Config, error) {
		return func(x float64) (scenario.Config, error) {
			cfg := scenario.DefaultConfig(core.SchemeOPT)
			cfg.NumSensors = o.Sensors
			cfg.DurationSeconds = o.DurationSeconds
			cfg.NumSinks = int(x)
			p := core.DefaultParams(core.SchemeOPT)
			mutate(&p)
			cfg.Params = &p
			return cfg, nil
		}
	}
	return Experiment{
		Name:   "ablation",
		XLabel: "sinks",
		Xs:     []float64{1, 3, 5},
		Variants: []Variant{
			{Name: "OPT", Build: build(func(*core.Params) {})},
			{Name: "OPT-fixedTau", Build: build(func(p *core.Params) { p.AdaptiveTau = false })},
			{Name: "OPT-fixedW", Build: build(func(p *core.Params) { p.AdaptiveWindow = false })},
			{Name: "OPT-fixedSleep", Build: build(func(p *core.Params) {
				p.AdaptiveSleep = false
				p.SleepFixed = 1
			})},
		},
		Runs:     o.Runs,
		BaseSeed: o.BaseSeed,
	}, nil
}

// Lifetime returns this reproduction's battery-exhaustion experiment: the
// sleeping and non-sleeping variants under a finite energy budget, swept
// over the budget. §4.1 motivates periodic sleeping with "prolonging the
// lifetime of individual sensors and accordingly the entire DFT-MSN"; this
// experiment quantifies it — the x axis is the battery in joules, and the
// reported metrics include the fraction of sensors still alive at the end
// and the time of the first death.
func Lifetime(o Options) (Experiment, error) {
	if err := o.validate(); err != nil {
		return Experiment{}, err
	}
	variants := make([]Variant, 0, 3)
	for _, sch := range []core.Scheme{core.SchemeOPT, core.SchemeNOOPT, core.SchemeNOSLEEP} {
		sch := sch
		variants = append(variants, Variant{
			Name: sch.String(),
			Build: func(x float64) (scenario.Config, error) {
				cfg := scenario.DefaultConfig(sch)
				cfg.NumSensors = o.Sensors
				cfg.DurationSeconds = o.DurationSeconds
				cfg.BatteryJoules = x
				return cfg, nil
			},
		})
	}
	return Experiment{
		Name:     "lifetime",
		XLabel:   "battery_j",
		Xs:       []float64{5, 15, 40},
		Variants: variants,
		Runs:     o.Runs,
		BaseSeed: o.BaseSeed,
	}, nil
}

// Faults returns this reproduction's fault-tolerance experiment: a burst
// node failure (killing the given fraction of sensors, with their queued
// messages, one third into the run) under the multi-copy FAD scheme versus
// the single-copy ZBR baseline and direct transmission. It makes the
// paper's titular property measurable: FTD-controlled replication keeps
// messages alive when their custodians die.
func Faults(o Options) (Experiment, error) {
	if err := o.validate(); err != nil {
		return Experiment{}, err
	}
	variants := make([]Variant, 0, 3)
	for _, sch := range []core.Scheme{core.SchemeOPT, core.SchemeZBR, core.SchemeDirect} {
		sch := sch
		variants = append(variants, Variant{
			Name: sch.String(),
			Build: func(x float64) (scenario.Config, error) {
				cfg := scenario.DefaultConfig(sch)
				cfg.NumSensors = o.Sensors
				cfg.DurationSeconds = o.DurationSeconds
				cfg.FailFraction = x
				cfg.FailAtSeconds = o.DurationSeconds / 3
				return cfg, nil
			},
		})
	}
	return Experiment{
		Name:     "faults",
		XLabel:   "fail_fraction",
		Xs:       []float64{0, 0.2, 0.4},
		Variants: variants,
		Runs:     o.Runs,
		BaseSeed: o.BaseSeed,
	}, nil
}

// Churn returns this reproduction's sustained-churn experiment: the swept
// fraction of sensors crashes and reboots in exponential MTBF/MTTR cycles
// (buffers wiped, ξ reset — the harsh reboot), under the multi-copy FAD
// scheme versus the single-copy ZBR baseline and direct transmission.
// Where the Faults experiment measures one burst, this one measures a
// steady failure process: every crash destroys the node's custodial
// copies, so delivery hinges on the replication the FTD loop maintains.
// The resilience columns (orphaned, copies_lost, crashes, recovery_s)
// expose the fault process itself next to the delivery metrics.
func Churn(o Options) (Experiment, error) {
	if err := o.validate(); err != nil {
		return Experiment{}, err
	}
	variants := make([]Variant, 0, 3)
	for _, sch := range []core.Scheme{core.SchemeOPT, core.SchemeZBR, core.SchemeDirect} {
		sch := sch
		variants = append(variants, Variant{
			Name: sch.String(),
			Build: func(x float64) (scenario.Config, error) {
				cfg := scenario.DefaultConfig(sch)
				cfg.NumSensors = o.Sensors
				cfg.DurationSeconds = o.DurationSeconds
				if x > 0 {
					// Fraction 0 means "all sensors" in a plan, but on
					// this axis x=0 is the fault-free baseline.
					cfg.Faults = &faults.Plan{Churn: &faults.Churn{
						MTBFSeconds:  o.DurationSeconds / 4,
						MTTRSeconds:  o.DurationSeconds / 8,
						Fraction:     x,
						StartSeconds: o.DurationSeconds / 6,
					}}
				}
				return cfg, nil
			},
		})
	}
	return Experiment{
		Name:     "churn",
		XLabel:   "churn_fraction",
		Xs:       []float64{0, 0.25, 0.5, 1},
		Variants: variants,
		Runs:     o.Runs,
		BaseSeed: o.BaseSeed,
	}, nil
}

// Loss returns this reproduction's channel-imperfection experiment: an
// independent per-reception loss probability stressing the handshake
// (every lost RTS/CTS/SCHEDULE/ACK costs an exchange; a lost ACK also
// costs a phantom removal from Φ).
func Loss(o Options) (Experiment, error) {
	if err := o.validate(); err != nil {
		return Experiment{}, err
	}
	variants := make([]Variant, 0, 2)
	for _, sch := range []core.Scheme{core.SchemeOPT, core.SchemeNOOPT} {
		sch := sch
		variants = append(variants, Variant{
			Name: sch.String(),
			Build: func(x float64) (scenario.Config, error) {
				cfg := scenario.DefaultConfig(sch)
				cfg.NumSensors = o.Sensors
				cfg.DurationSeconds = o.DurationSeconds
				cfg.LossProb = x
				return cfg, nil
			},
		})
	}
	return Experiment{
		Name:     "loss",
		XLabel:   "loss_prob",
		Xs:       []float64{0, 0.1, 0.2, 0.3},
		Variants: variants,
		Runs:     o.Runs,
		BaseSeed: o.BaseSeed,
	}, nil
}

// Extensions returns the §2 basic schemes (direct transmission and
// epidemic flooding) next to OPT over the sink sweep — the bracketing
// baselines analysed in the authors' earlier DFT-MSN work.
func Extensions(o Options) (Experiment, error) {
	if err := o.validate(); err != nil {
		return Experiment{}, err
	}
	variants := make([]Variant, 0, 3)
	for _, sch := range []core.Scheme{core.SchemeOPT, core.SchemeDirect, core.SchemeEpidemic} {
		sch := sch
		variants = append(variants, Variant{
			Name: sch.String(),
			Build: func(x float64) (scenario.Config, error) {
				cfg := scenario.DefaultConfig(sch)
				cfg.NumSensors = o.Sensors
				cfg.DurationSeconds = o.DurationSeconds
				cfg.NumSinks = int(x)
				return cfg, nil
			},
		})
	}
	return Experiment{
		Name:     "extensions",
		XLabel:   "sinks",
		Xs:       []float64{1, 3, 5},
		Variants: variants,
		Runs:     o.Runs,
		BaseSeed: o.BaseSeed,
	}, nil
}
