package sweep

import (
	"errors"
	"fmt"

	"dftmsn/internal/faults"
	"dftmsn/internal/scenario"
	"dftmsn/internal/snapshot"
)

// FaultFuture is the outcome of one candidate fault plan evaluated against a
// shared warm checkpoint: "what would happen to this network if THIS set of
// faults hit it" for many candidate futures without re-simulating the common
// fault-free past.
type FaultFuture struct {
	// Plan is the candidate fault plan (nil for a fault-free future).
	Plan *faults.Plan
	// Result is the full-run result under the plan; bit-identical to a
	// from-scratch run of the base config with the plan substituted.
	Result scenario.Result
	// Warm reports whether the run was served from the shared checkpoint
	// (false when the plan forced a cold from-scratch run, e.g. a plan that
	// changes the burst-loss clause or acts before the checkpoint).
	Warm bool
	// Err is the evaluation error, nil on success.
	Err error
}

// EvalFaultFutures evaluates candidate fault plans against the base scenario
// on the worker pool, warm-forking each from a single checkpoint taken at
// checkpointAt seconds (quiescent instant at or after it). Plans must keep
// the base's burst-loss clause and must not act at or before the checkpoint;
// a plan that violates either falls back to a cold from-scratch run, flagged
// Warm=false, so the returned results are always the true full-run outcomes.
//
// The checkpoint is serialized once and decoded per worker, so parallel
// restores share no mutable state.
func EvalFaultFutures(base scenario.Config, checkpointAt float64, plans []*faults.Plan, workers int) ([]FaultFuture, error) {
	if len(plans) == 0 {
		return nil, errors.New("sweep: no fault futures to evaluate")
	}
	if checkpointAt < 0 || checkpointAt >= base.DurationSeconds {
		return nil, fmt.Errorf("sweep: checkpoint instant %v s outside the %v s run", checkpointAt, base.DurationSeconds)
	}
	s, err := scenario.New(base)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	snap, err := s.CheckpointAt(checkpointAt)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	blob, err := snapshot.EncodeBytes(snap)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}

	futures := make([]FaultFuture, len(plans))
	errs := ParallelErrors(len(plans), workers, func(i int) error {
		futures[i] = evalOneFuture(base, blob, plans[i])
		return futures[i].Err
	})
	for i, err := range errs {
		if err != nil && futures[i].Err == nil {
			futures[i] = FaultFuture{Plan: plans[i], Err: err} // recovered panic
		}
	}
	return futures, nil
}

// evalOneFuture runs one candidate plan, warm when the checkpoint admits it
// and cold otherwise.
func evalOneFuture(base scenario.Config, blob []byte, plan *faults.Plan) FaultFuture {
	f := FaultFuture{Plan: plan}
	if snap, err := snapshot.DecodeBytes(blob); err == nil {
		if s, err := scenario.RestoreForPlan(snap, plan); err == nil {
			f.Result, f.Err = s.Run()
			f.Warm = true
			return f
		}
	}
	cfg := base
	cfg.Faults = plan
	cfg.FailFraction = 0 // the plan replaces every fault source, as in RestoreForPlan
	cfg.FailAtSeconds = 0
	s, err := scenario.New(cfg)
	if err != nil {
		f.Err = err
		return f
	}
	f.Result, f.Err = s.Run()
	return f
}
