package sweep

import (
	"reflect"
	"strings"
	"testing"

	"dftmsn/internal/core"
	"dftmsn/internal/faults"
	"dftmsn/internal/scenario"
)

func futuresBase() scenario.Config {
	cfg := scenario.DefaultConfig(core.SchemeOPT)
	cfg.NumSensors = 10
	cfg.NumSinks = 2
	cfg.DurationSeconds = 400
	cfg.ArrivalMeanSeconds = 40
	cfg.Seed = 21
	cfg.Invariants = "report"
	return cfg
}

// coldFuture is the from-scratch reference a future must match.
func coldFuture(t *testing.T, base scenario.Config, plan *faults.Plan) scenario.Result {
	t.Helper()
	cfg := base
	cfg.Faults = plan
	s, err := scenario.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEvalFaultFuturesMatchesColdRuns(t *testing.T) {
	base := futuresBase()
	plans := []*faults.Plan{
		nil, // the fault-free future
		{Churn: &faults.Churn{StartSeconds: 250, MTBFSeconds: 150, MTTRSeconds: 30, Fraction: 0.3}},
		{Kills: []faults.Kill{{AtSeconds: 300, Fraction: 0.2}},
			SinkOutages: []faults.Outage{{Sink: 0, StartSeconds: 280, DurationSeconds: 60}}},
		// A burst clause the base lacks: channel state the checkpoint cannot
		// supply, so this future must fall back to a cold run.
		{Burst: &faults.Burst{GoodLossProb: 0.01, BadLossProb: 0.5, MeanGoodSeconds: 40, MeanBadSeconds: 10}},
		// A fault before the checkpoint: the warm restore must refuse it.
		{Kills: []faults.Kill{{AtSeconds: 50, Fraction: 0.1}}},
	}
	futures, err := EvalFaultFutures(base, 100, plans, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(futures) != len(plans) {
		t.Fatalf("%d futures for %d plans", len(futures), len(plans))
	}
	wantWarm := []bool{true, true, true, false, false}
	for i, f := range futures {
		if f.Err != nil {
			t.Fatalf("future %d: %v", i, f.Err)
		}
		if f.Warm != wantWarm[i] {
			t.Errorf("future %d: warm=%v, want %v", i, f.Warm, wantWarm[i])
		}
		cold := coldFuture(t, base, plans[i])
		if !reflect.DeepEqual(f.Result, cold) {
			t.Errorf("future %d diverges from the from-scratch run:\nwarm: %+v\ncold: %+v", i, f.Result, cold)
		}
	}
}

func TestEvalFaultFuturesRejectsBadCheckpoint(t *testing.T) {
	base := futuresBase()
	if _, err := EvalFaultFutures(base, base.DurationSeconds, []*faults.Plan{nil}, 1); err == nil {
		t.Fatal("checkpoint at the horizon accepted")
	}
	if _, err := EvalFaultFutures(base, 100, nil, 1); err == nil {
		t.Fatal("empty plan list accepted")
	}
}

func TestParallelErrorsRecoversPanics(t *testing.T) {
	errs := ParallelErrors(5, 2, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	for i, err := range errs {
		if i == 2 {
			if err == nil || !strings.Contains(err.Error(), "job 2 panicked: boom") {
				t.Fatalf("errs[2] = %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("errs[%d] = %v", i, err)
		}
	}
	if err := Parallel(5, 2, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	}); err == nil {
		t.Fatal("Parallel swallowed the panic")
	}
}

func TestExperimentRunNamesPanickedPoint(t *testing.T) {
	e := tinyExperiment()
	e.Variants[1].Build = func(x float64) (scenario.Config, error) {
		if x == 2 {
			panic("poisoned build")
		}
		return tinyVariant("ZBR", core.SchemeZBR).Build(x)
	}
	_, err := e.Run(2)
	if err == nil {
		t.Fatal("panicking point did not fail the sweep")
	}
	for _, want := range []string{"ZBR", "sinks=2", "seed", "panic", "poisoned build"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
}
