package sweep

import (
	"encoding/json"
	"fmt"
)

// jsonTable is the marshalled form of a Table: experiment metadata plus
// one record per (variant, x) cell carrying every metric with mean,
// standard deviation, and run count.
type jsonTable struct {
	Experiment string     `json:"experiment"`
	XLabel     string     `json:"x_label"`
	Cells      []jsonCell `json:"cells"`
}

type jsonCell struct {
	Variant string                `json:"variant"`
	X       float64               `json:"x"`
	Metrics map[string]jsonMetric `json:"metrics"`
}

type jsonMetric struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Runs   int     `json:"runs"`
}

// JSON renders the full table (all metrics) as indented JSON, suitable for
// downstream plotting tools.
func (t *Table) JSON() ([]byte, error) {
	out := jsonTable{
		Experiment: t.Experiment,
		XLabel:     t.XLabel,
		Cells:      make([]jsonCell, 0, len(t.Variants)*len(t.Xs)),
	}
	for vi, name := range t.Variants {
		for xi, x := range t.Xs {
			cell := jsonCell{
				Variant: name,
				X:       x,
				Metrics: make(map[string]jsonMetric, len(Metrics())),
			}
			for _, m := range Metrics() {
				st := t.cells[vi][xi].value(m)
				if st == nil {
					return nil, fmt.Errorf("sweep: metric %q has no extractor", m)
				}
				cell.Metrics[string(m)] = jsonMetric{
					Mean:   st.Mean(),
					StdDev: st.StdDev(),
					Runs:   st.N(),
				}
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
