// Package sweep runs parameter sweeps over the DFT-MSN simulator: a grid
// of (variant × x-value) points, each averaged over several seeds, executed
// on a bounded worker pool. It powers the figure-regeneration harness
// (cmd/figures) and the repository benchmarks.
package sweep

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"dftmsn/internal/metrics"
	"dftmsn/internal/scenario"
	"dftmsn/internal/sim"
	"dftmsn/internal/telemetry"
)

// Variant is one line in a figure: a named configuration builder.
type Variant struct {
	// Name labels the row (e.g. "OPT", "ZBR", "OPT-noAdaptiveTau").
	Name string
	// Build produces the scenario for one x value. The sweep overrides the
	// config's Seed per run.
	Build func(x float64) (scenario.Config, error)
}

// Experiment is a full sweep: every variant evaluated at every x, averaged
// over Runs seeds.
type Experiment struct {
	// Name identifies the experiment (e.g. "fig2a").
	Name string
	// XLabel names the swept parameter (e.g. "sinks").
	XLabel string
	// Xs are the swept values.
	Xs []float64
	// Variants are the lines.
	Variants []Variant
	// Runs is the number of seeds per point (>= 1).
	Runs int
	// BaseSeed offsets the per-run seeds for reproducibility.
	BaseSeed uint64
	// Telemetry arms the per-run metrics registry on every simulation and
	// aggregates the runs of each point into Point.Telemetry (histograms
	// and event counters sum across seeds; per-run time series are not
	// kept). All runs of a point share duration and queue capacity, so the
	// histogram bounds line up for merging.
	Telemetry bool
	// Cancel optionally installs a cooperative cancellation probe on the
	// whole sweep: it is consulted before each simulation starts and
	// threaded into every running kernel (scenario.Config.Cancel), so a
	// fired probe stops in-flight runs at their next event boundary and
	// skips runs not yet started. A cancelled sweep returns an error
	// wrapping sim.ErrCancelled. Runtime-only; it never perturbs the
	// events completed runs fired.
	Cancel func() bool
	// Budget optionally splits cores between concurrent runs and per-run
	// shards: Run(0) sizes its worker pool at Budget.Workers(), and each
	// run Acquires its shard grant before building the kernel and sets
	// Config.Shards to it. Runtime-only, like Cancel: a budgeted sweep's
	// per-point Results are bit-identical to a sequential one's — every
	// shard count is — so the budget only decides where the cores go.
	Budget *CoreBudget
}

// Validate reports experiment definition errors.
func (e Experiment) Validate() error {
	if e.Name == "" {
		return errors.New("sweep: empty experiment name")
	}
	if len(e.Xs) == 0 || len(e.Variants) == 0 {
		return fmt.Errorf("sweep: experiment %q needs xs and variants", e.Name)
	}
	if e.Runs < 1 {
		return fmt.Errorf("sweep: experiment %q needs Runs >= 1", e.Name)
	}
	for _, v := range e.Variants {
		if v.Name == "" || v.Build == nil {
			return fmt.Errorf("sweep: experiment %q has an invalid variant", e.Name)
		}
	}
	return nil
}

// Stats aggregates one metric over the runs of a point.
type Stats struct {
	w metrics.Welford
}

// Add records one observation.
func (s *Stats) Add(x float64) { s.w.Add(x) }

// Mean returns the mean over runs.
func (s *Stats) Mean() float64 { return s.w.Mean() }

// StdDev returns the sample standard deviation over runs.
func (s *Stats) StdDev() float64 { return s.w.StdDev() }

// N returns the number of runs recorded.
func (s *Stats) N() int { return s.w.N() }

// Point aggregates every reported metric for one (variant, x) cell.
type Point struct {
	DeliveryRatio  Stats
	PowerMW        Stats
	DelaySeconds   Stats
	MedianDelay    Stats
	DutyCycle      Stats
	Duplicates     Stats
	Collisions     Stats
	Drops          Stats
	CtrlBitsPerMsg Stats
	AvgHops        Stats
	DeliveredCount Stats
	GeneratedCount Stats
	AliveFraction  Stats
	FirstDeath     Stats
	Orphaned       Stats
	CopiesLost     Stats
	Crashes        Stats
	RecoverySec    Stats
	Violations     Stats

	// Telemetry is the merged per-run telemetry of the point's seeds: nil
	// unless the experiment ran with Telemetry set.
	Telemetry *telemetry.Report
}

// add folds one run result into the point.
func (p *Point) add(r scenario.Result) {
	p.DeliveryRatio.Add(r.Delivery.DeliveryRatio)
	p.PowerMW.Add(r.AvgSensorPowerMW)
	p.DelaySeconds.Add(r.Delivery.AvgDelaySeconds)
	p.MedianDelay.Add(r.Delivery.MedianDelaySeconds)
	p.DutyCycle.Add(r.AvgDutyCycle)
	p.Duplicates.Add(float64(r.Delivery.Duplicates))
	p.Collisions.Add(float64(r.Channel.Collisions))
	p.Drops.Add(float64(r.DropsFull + r.DropsThreshold))
	p.CtrlBitsPerMsg.Add(r.ControlBitsPerDelivered)
	p.AvgHops.Add(r.Delivery.AvgHops)
	p.DeliveredCount.Add(float64(r.Delivery.Delivered))
	p.GeneratedCount.Add(float64(r.Delivery.Generated))
	p.AliveFraction.Add(r.AliveFraction)
	p.FirstDeath.Add(r.FirstDeathSeconds)
	p.Orphaned.Add(float64(r.Resilience.Orphaned))
	p.CopiesLost.Add(float64(r.Resilience.CopiesLost))
	p.Crashes.Add(float64(r.Resilience.Crashes))
	p.RecoverySec.Add(r.Resilience.RecoverySeconds)
	p.Violations.Add(float64(r.Invariants.Violations))
}

// Metric selects a column for formatting.
type Metric string

// Supported metrics.
const (
	MetricRatio      Metric = "ratio"
	MetricPowerMW    Metric = "power_mw"
	MetricDelay      Metric = "delay_s"
	MetricDuty       Metric = "duty"
	MetricCollisions Metric = "collisions"
	MetricDrops      Metric = "drops"
	MetricOverhead   Metric = "ctrl_bits_per_msg"
	MetricHops       Metric = "hops"
	MetricAlive      Metric = "alive_fraction"
	MetricFirstDeath Metric = "first_death_s"
	MetricOrphaned   Metric = "orphaned"
	MetricCopiesLost Metric = "copies_lost"
	MetricCrashes    Metric = "crashes"
	MetricRecovery   Metric = "recovery_s"
	MetricViolations Metric = "invariant_violations"
)

// Metrics lists the supported metric names.
func Metrics() []Metric {
	return []Metric{MetricRatio, MetricPowerMW, MetricDelay, MetricDuty,
		MetricCollisions, MetricDrops, MetricOverhead, MetricHops,
		MetricAlive, MetricFirstDeath, MetricOrphaned, MetricCopiesLost,
		MetricCrashes, MetricRecovery, MetricViolations}
}

// value extracts the named metric.
func (p *Point) value(m Metric) *Stats {
	switch m {
	case MetricRatio:
		return &p.DeliveryRatio
	case MetricPowerMW:
		return &p.PowerMW
	case MetricDelay:
		return &p.DelaySeconds
	case MetricDuty:
		return &p.DutyCycle
	case MetricCollisions:
		return &p.Collisions
	case MetricDrops:
		return &p.Drops
	case MetricOverhead:
		return &p.CtrlBitsPerMsg
	case MetricHops:
		return &p.AvgHops
	case MetricAlive:
		return &p.AliveFraction
	case MetricFirstDeath:
		return &p.FirstDeath
	case MetricOrphaned:
		return &p.Orphaned
	case MetricCopiesLost:
		return &p.CopiesLost
	case MetricCrashes:
		return &p.Crashes
	case MetricRecovery:
		return &p.RecoverySec
	case MetricViolations:
		return &p.Violations
	default:
		return nil
	}
}

// Table holds the aggregated sweep results: cells[variant][xIndex].
type Table struct {
	Experiment string
	XLabel     string
	Xs         []float64
	Variants   []string
	cells      [][]*Point
}

// Cell returns the aggregated point for (variant index, x index).
func (t *Table) Cell(variant, xi int) *Point { return t.cells[variant][xi] }

// Format renders one metric as an aligned text table, one row per variant.
func (t *Table) Format(m Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s by %s\n", t.Experiment, m, t.XLabel)
	fmt.Fprintf(&b, "%-14s", t.XLabel)
	for _, x := range t.Xs {
		fmt.Fprintf(&b, "%12s", trimFloat(x))
	}
	b.WriteByte('\n')
	for vi, name := range t.Variants {
		fmt.Fprintf(&b, "%-14s", name)
		for xi := range t.Xs {
			st := t.cells[vi][xi].value(m)
			if st == nil {
				fmt.Fprintf(&b, "%12s", "?")
				continue
			}
			fmt.Fprintf(&b, "%12.4g", st.Mean())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders one metric as comma-separated values with a header row,
// including standard deviations.
func (t *Table) CSV(m Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "variant,%s,%s,stddev,runs\n", t.XLabel, m)
	for vi, name := range t.Variants {
		for xi, x := range t.Xs {
			st := t.cells[vi][xi].value(m)
			if st == nil {
				continue
			}
			fmt.Fprintf(&b, "%s,%s,%g,%g,%d\n", name, trimFloat(x), st.Mean(), st.StdDev(), st.N())
		}
	}
	return b.String()
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Parallel runs fn(0), …, fn(n-1) on up to workers goroutines (0 means
// GOMAXPROCS) and waits for all of them. On failure it returns the error of
// the smallest failing index, regardless of completion order, so callers get
// a deterministic report. The chaos campaign runner shares this pool.
func Parallel(n, workers int, fn func(i int) error) error {
	for _, err := range ParallelErrors(n, workers, fn) {
		if err != nil {
			return err
		}
	}
	return nil
}

// ParallelErrors is Parallel with the full per-index error slice: errs[i] is
// fn(i)'s error, nil on success. A panicking fn is recovered into its slot's
// error rather than tearing down the pool, so one poisoned job cannot abort
// a whole campaign — the caller sees exactly which indices failed and why.
func ParallelErrors(n, workers int, fn func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = guarded(fn, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return errs
}

// guarded calls fn(i), converting a panic into an error carrying the job
// index and the stack of the failing worker.
func guarded(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: job %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}

// Guard runs fn, converting a panic into an error carrying the panic value
// and the worker's stack. It is the same recovery discipline the pool's
// workers apply per job, exported for consumers that execute jobs outside
// ParallelErrors — the scenario service's executor isolates poison jobs
// with it.
func Guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return fn()
}

// Run executes the experiment on up to workers goroutines (0 means
// GOMAXPROCS). Each (variant, x, run) is an independent simulation with
// seed BaseSeed + runIndex; results are averaged per point, folded in job
// order so the aggregate floats are reproducible.
func (e Experiment) Run(workers int) (*Table, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	table := &Table{
		Experiment: e.Name,
		XLabel:     e.XLabel,
		Xs:         append([]float64(nil), e.Xs...),
		Variants:   make([]string, len(e.Variants)),
		cells:      make([][]*Point, len(e.Variants)),
	}
	for vi, v := range e.Variants {
		table.Variants[vi] = v.Name
		table.cells[vi] = make([]*Point, len(e.Xs))
		for xi := range e.Xs {
			table.cells[vi][xi] = &Point{}
		}
	}

	type job struct {
		vi, xi, run int
	}
	flat := make([]job, 0, len(e.Variants)*len(e.Xs)*e.Runs)
	for vi := range e.Variants {
		for xi := range e.Xs {
			for run := 0; run < e.Runs; run++ {
				flat = append(flat, job{vi: vi, xi: xi, run: run})
			}
		}
	}
	if e.Budget != nil && workers <= 0 {
		workers = e.Budget.Workers()
	}
	results := make([]scenario.Result, len(flat))
	err := Parallel(len(flat), workers, func(i int) (err error) {
		j := flat[i]
		seed := e.BaseSeed + uint64(j.run)
		fail := func(err error) error {
			return fmt.Errorf("sweep: %s[%s=%v run %d seed %d]: %w",
				e.Variants[j.vi].Name, e.XLabel, e.Xs[j.xi], j.run, seed, err)
		}
		// A panicking simulation is recorded against its point, not as a
		// bare job index: the failure names the variant, x, run and seed
		// needed to replay it in isolation.
		defer func() {
			if r := recover(); r != nil {
				err = fail(fmt.Errorf("panic: %v\n%s", r, debug.Stack()))
			}
		}()
		// A fired probe skips runs not yet started; in-flight runs stop at
		// their next event boundary via the per-kernel probe below.
		if e.Cancel != nil && e.Cancel() {
			return fail(sim.ErrCancelled)
		}
		cfg, err := e.Variants[j.vi].Build(e.Xs[j.xi])
		if err != nil {
			return fail(err)
		}
		cfg.Seed = seed
		if e.Telemetry {
			cfg.Telemetry = true
		}
		cfg.Cancel = e.Cancel
		if e.Budget != nil {
			shards := e.Budget.Acquire(0)
			defer e.Budget.Release(shards)
			cfg.Shards = shards
		}
		s, err := scenario.New(cfg)
		if err != nil {
			return fail(err)
		}
		res, err := s.Run()
		if err != nil {
			return fail(err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range flat {
		table.cells[j.vi][j.xi].add(results[i])
	}
	if e.Telemetry {
		// flat is laid out (vi, xi, run)-major, so a point's runs are the
		// contiguous block starting at (vi*len(Xs)+xi)*Runs; merging in
		// run order keeps the aggregated floats reproducible.
		for vi := range e.Variants {
			for xi := range e.Xs {
				base := (vi*len(e.Xs) + xi) * e.Runs
				reps := make([]*telemetry.Report, e.Runs)
				for run := 0; run < e.Runs; run++ {
					reps[run] = results[base+run].Telemetry
				}
				merged, err := telemetry.MergeReports(reps)
				if err != nil {
					return nil, fmt.Errorf("sweep: %s[%s=%v]: %w",
						e.Variants[vi].Name, e.XLabel, e.Xs[xi], err)
				}
				table.cells[vi][xi].Telemetry = merged
			}
		}
	}
	return table, nil
}

// SortedVariantIndex returns variant indices ordered by the metric at the
// last x (descending) — convenient for "who wins" checks in tests and
// benches.
func (t *Table) SortedVariantIndex(m Metric) []int {
	idx := make([]int, len(t.Variants))
	for i := range idx {
		idx[i] = i
	}
	last := len(t.Xs) - 1
	sort.SliceStable(idx, func(a, b int) bool {
		return t.cells[idx[a]][last].value(m).Mean() > t.cells[idx[b]][last].value(m).Mean()
	})
	return idx
}
