package sweep

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dftmsn/internal/core"
	"dftmsn/internal/faults"
	"dftmsn/internal/scenario"
	"dftmsn/internal/telemetry"
)

// tinyVariant builds a very small, fast scenario.
func tinyVariant(name string, sch core.Scheme) Variant {
	return Variant{
		Name: name,
		Build: func(x float64) (scenario.Config, error) {
			cfg := scenario.DefaultConfig(sch)
			cfg.NumSensors = 10
			cfg.NumSinks = int(x)
			cfg.DurationSeconds = 200
			cfg.ArrivalMeanSeconds = 40
			return cfg, nil
		},
	}
}

func tinyExperiment() Experiment {
	return Experiment{
		Name:     "tiny",
		XLabel:   "sinks",
		Xs:       []float64{1, 2},
		Variants: []Variant{tinyVariant("OPT", core.SchemeOPT), tinyVariant("ZBR", core.SchemeZBR)},
		Runs:     2,
		BaseSeed: 3,
	}
}

func TestExperimentValidate(t *testing.T) {
	good := tinyExperiment()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = good
	bad.Xs = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty xs accepted")
	}
	bad = good
	bad.Runs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero runs accepted")
	}
	bad = good
	bad.Variants = []Variant{{Name: "x"}}
	if err := bad.Validate(); err == nil {
		t.Error("nil build accepted")
	}
}

func TestRunAggregates(t *testing.T) {
	table, err := tinyExperiment().Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Variants) != 2 || len(table.Xs) != 2 {
		t.Fatalf("table shape %dx%d", len(table.Variants), len(table.Xs))
	}
	for vi := range table.Variants {
		for xi := range table.Xs {
			p := table.Cell(vi, xi)
			if p.DeliveryRatio.N() != 2 {
				t.Fatalf("cell (%d,%d) has %d runs, want 2", vi, xi, p.DeliveryRatio.N())
			}
			if p.GeneratedCount.Mean() <= 0 {
				t.Fatalf("cell (%d,%d) saw no traffic", vi, xi)
			}
			r := p.DeliveryRatio.Mean()
			if r < 0 || r > 1 {
				t.Fatalf("ratio %v out of range", r)
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	t1, err := tinyExperiment().Run(1)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := tinyExperiment().Run(8)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range t1.Variants {
		for xi := range t1.Xs {
			a := t1.Cell(vi, xi).DeliveryRatio.Mean()
			b := t8.Cell(vi, xi).DeliveryRatio.Mean()
			if a != b {
				t.Fatalf("cell (%d,%d) differs by worker count: %v vs %v", vi, xi, a, b)
			}
		}
	}
}

func TestRunPropagatesBuildErrors(t *testing.T) {
	e := tinyExperiment()
	e.Variants = append(e.Variants, Variant{
		Name: "broken",
		Build: func(float64) (scenario.Config, error) {
			return scenario.Config{}, nil // invalid zero config
		},
	})
	if _, err := e.Run(2); err == nil {
		t.Fatal("invalid config did not surface")
	}
}

func TestFormatAndCSV(t *testing.T) {
	table, err := tinyExperiment().Run(4)
	if err != nil {
		t.Fatal(err)
	}
	txt := table.Format(MetricRatio)
	if !strings.Contains(txt, "OPT") || !strings.Contains(txt, "ZBR") || !strings.Contains(txt, "sinks") {
		t.Fatalf("Format output missing labels:\n%s", txt)
	}
	if len(strings.Split(strings.TrimSpace(txt), "\n")) != 4 { // header comment + x row + 2 variants
		t.Fatalf("unexpected table shape:\n%s", txt)
	}
	csv := table.CSV(MetricPowerMW)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+2*2 { // header + variants*xs
		t.Fatalf("CSV has %d lines:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "variant,sinks,power_mw") {
		t.Fatalf("CSV header %q", lines[0])
	}
	// Unknown metric renders placeholders rather than panicking.
	if out := table.Format(Metric("nope")); !strings.Contains(out, "?") {
		t.Fatalf("unknown metric output:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	table, err := tinyExperiment().Run(4)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := table.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Experiment string `json:"experiment"`
		XLabel     string `json:"x_label"`
		Cells      []struct {
			Variant string  `json:"variant"`
			X       float64 `json:"x"`
			Metrics map[string]struct {
				Mean float64 `json:"mean"`
				Runs int     `json:"runs"`
			} `json:"metrics"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if decoded.Experiment != "tiny" || decoded.XLabel != "sinks" {
		t.Fatalf("metadata %+v", decoded)
	}
	if len(decoded.Cells) != 4 { // 2 variants x 2 xs
		t.Fatalf("cells = %d", len(decoded.Cells))
	}
	for _, c := range decoded.Cells {
		m, ok := c.Metrics["ratio"]
		if !ok {
			t.Fatalf("cell missing ratio metric: %+v", c)
		}
		if m.Runs != 2 || m.Mean < 0 || m.Mean > 1 {
			t.Fatalf("ratio metric %+v", m)
		}
	}
}

func TestMetricsList(t *testing.T) {
	if len(Metrics()) < 6 {
		t.Fatalf("only %d metrics", len(Metrics()))
	}
	table, err := tinyExperiment().Run(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Metrics() {
		if table.Cell(0, 0).value(m) == nil {
			t.Errorf("metric %q has no extractor", m)
		}
	}
}

func TestSortedVariantIndex(t *testing.T) {
	table, err := tinyExperiment().Run(4)
	if err != nil {
		t.Fatal(err)
	}
	idx := table.SortedVariantIndex(MetricRatio)
	if len(idx) != 2 {
		t.Fatalf("idx = %v", idx)
	}
	last := len(table.Xs) - 1
	a := table.Cell(idx[0], last).DeliveryRatio.Mean()
	b := table.Cell(idx[1], last).DeliveryRatio.Mean()
	if a < b {
		t.Fatalf("not sorted: %v < %v", a, b)
	}
}

func TestPredefinedExperimentsValidate(t *testing.T) {
	o := QuickOptions()
	for _, build := range []func(Options) (Experiment, error){Fig2, Density, Speed, Ablation, Extensions, Lifetime, Faults, Churn, Loss} {
		e, err := build(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
		// Every variant must build a valid config at every x.
		for _, v := range e.Variants {
			for _, x := range e.Xs {
				cfg, err := v.Build(x)
				if err != nil {
					t.Errorf("%s/%s(%v): %v", e.Name, v.Name, x, err)
					continue
				}
				if err := cfg.Validate(); err != nil {
					t.Errorf("%s/%s(%v): %v", e.Name, v.Name, x, err)
				}
			}
		}
	}
	bad := Options{}
	if _, err := Fig2(bad); err == nil {
		t.Error("invalid options accepted")
	}
}

// TestResilienceColumns runs a tiny churn sweep and checks that the fault
// process surfaces in the new resilience metrics.
func TestResilienceColumns(t *testing.T) {
	e := Experiment{
		Name:   "tiny-churn",
		XLabel: "churn_fraction",
		Xs:     []float64{1},
		Variants: []Variant{{
			Name: "OPT",
			Build: func(x float64) (scenario.Config, error) {
				cfg := scenario.DefaultConfig(core.SchemeOPT)
				cfg.NumSensors = 10
				cfg.DurationSeconds = 600
				cfg.ArrivalMeanSeconds = 40
				cfg.Faults = &faults.Plan{Churn: &faults.Churn{
					MTBFSeconds: 150,
					MTTRSeconds: 75,
					Fraction:    x,
				}}
				return cfg, nil
			},
		}},
		Runs:     1,
		BaseSeed: 5,
	}
	table, err := e.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	p := table.Cell(0, 0)
	if p.Crashes.Mean() <= 0 {
		t.Fatalf("churn sweep recorded no crashes")
	}
	csv := table.CSV(MetricCrashes)
	if !strings.Contains(csv, "crashes") {
		t.Fatalf("CSV header missing crashes column:\n%s", csv)
	}
}

func TestOptionsPresets(t *testing.T) {
	p := PaperOptions()
	if p.DurationSeconds != 25_000 || p.Sensors != 100 {
		t.Fatalf("PaperOptions = %+v", p)
	}
	q := QuickOptions()
	if q.DurationSeconds >= p.DurationSeconds {
		t.Fatal("QuickOptions not quicker than PaperOptions")
	}
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	if err := q.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParallel(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var mu sync.Mutex
		seen := make(map[int]int)
		err := Parallel(25, workers, func(i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != 25 {
			t.Fatalf("workers=%d: %d indices run, want 25", workers, len(seen))
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: index %d run %d times", workers, i, n)
			}
		}
	}
	// The smallest failing index wins regardless of completion order.
	for trial := 0; trial < 20; trial++ {
		err := Parallel(10, 4, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("trial %d: err = %v, want job 3 failed", trial, err)
		}
	}
	if err := Parallel(0, 4, func(int) error { return fmt.Errorf("boom") }); err != nil {
		t.Fatalf("n=0 ran jobs: %v", err)
	}
}

// TestRunTelemetryAggregation checks that arming Experiment.Telemetry
// yields a merged per-point report whose counters sum over the point's
// seeds and whose delivery histogram matches the averaged delivered count.
func TestRunTelemetryAggregation(t *testing.T) {
	e := tinyExperiment()
	e.Telemetry = true
	table, err := e.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range table.Variants {
		for xi := range table.Xs {
			p := table.Cell(vi, xi)
			if p.Telemetry == nil || p.Telemetry.Run == nil {
				t.Fatalf("cell (%d,%d) has no merged telemetry", vi, xi)
			}
			m := p.Telemetry.Run
			// DeliveredCount holds the per-run mean; the merged histogram
			// holds the sum over the point's runs.
			wantDelivered := p.DeliveredCount.Mean() * float64(p.DeliveredCount.N())
			if got := float64(m.DeliveryDelay.Count()); got != wantDelivered {
				t.Errorf("cell (%d,%d): merged delay histogram n=%v, want %v", vi, xi, got, wantDelivered)
			}
			wantGen := p.GeneratedCount.Mean() * float64(p.GeneratedCount.N())
			gen := m.EventCount(telemetry.EvGen) + m.EventCount(telemetry.EvGenDrop)
			if gen != wantGen {
				t.Errorf("cell (%d,%d): merged gen counters %v, want %v", vi, xi, gen, wantGen)
			}
		}
	}
	// Telemetry off leaves the field nil.
	plain, err := tinyExperiment().Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cell(0, 0).Telemetry != nil {
		t.Error("telemetry report attached without Experiment.Telemetry")
	}
}
