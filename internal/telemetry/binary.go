package telemetry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"dftmsn/internal/packet"
)

// Binary framing: a 6-byte header — the magic "DFTB" followed by the schema
// version as a little-endian uint16 — then fixed-width 50-byte records:
//
//	off  size  field
//	  0     8  Time   (float64 bits, little-endian)
//	  8     4  Node   (int32)
//	 12     1  Type   (uint8)
//	 13     1  Kept   (0/1)
//	 14     8  Msg    (uint64)
//	 22     4  Peer   (int32)
//	 26     8  FTD    (float64 bits)
//	 34     8  Value  (float64 bits)
//	 42     4  Count  (int32)
//	 46     4  Aux    (int32)
const (
	binaryMagic      = "DFTB"
	binaryRecordSize = 50
	binaryHeaderSize = 6
)

// BinaryWriter emits trace-v2 events in the compact binary framing. It is
// safe for concurrent use; the first write error is surfaced by Flush.
type BinaryWriter struct {
	mu     sync.Mutex
	w      *bufio.Writer
	rec    [binaryRecordSize]byte
	n      uint64
	max    uint64
	err    error
	header bool
}

var _ Recorder = (*BinaryWriter)(nil)

// NewBinary wraps w. maxEvents caps output; zero means unlimited.
func NewBinary(w io.Writer, maxEvents uint64) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w), max: maxEvents}
}

// Record implements Recorder.
func (t *BinaryWriter) Record(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.max > 0 && t.n >= t.max {
		return
	}
	if !t.header {
		t.header = true
		var hdr [binaryHeaderSize]byte
		copy(hdr[:4], binaryMagic)
		binary.LittleEndian.PutUint16(hdr[4:6], SchemaVersion)
		t.write(hdr[:])
	}
	t.n++
	b := t.rec[:]
	binary.LittleEndian.PutUint64(b[0:8], math.Float64bits(ev.Time))
	binary.LittleEndian.PutUint32(b[8:12], uint32(ev.Node))
	b[12] = byte(ev.Type)
	if ev.Kept {
		b[13] = 1
	} else {
		b[13] = 0
	}
	binary.LittleEndian.PutUint64(b[14:22], uint64(ev.Msg))
	binary.LittleEndian.PutUint32(b[22:26], uint32(ev.Peer))
	binary.LittleEndian.PutUint64(b[26:34], math.Float64bits(ev.FTD))
	binary.LittleEndian.PutUint64(b[34:42], math.Float64bits(ev.Value))
	binary.LittleEndian.PutUint32(b[42:46], uint32(ev.Count))
	binary.LittleEndian.PutUint32(b[46:50], uint32(ev.Aux))
	t.write(b)
}

func (t *BinaryWriter) write(b []byte) {
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// Events returns the number of events written (after capping).
func (t *BinaryWriter) Events() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Flush drains buffered output and returns the first error encountered by
// any write since construction.
func (t *BinaryWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); t.err == nil && err != nil {
		t.err = err
	}
	return t.err
}

// readBinary parses a binary trace-v2 stream positioned at the magic.
func readBinary(r *bufio.Reader) ([]Event, error) {
	var hdr [binaryHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("telemetry: binary header: %w", err)
	}
	if string(hdr[:4]) != binaryMagic {
		return nil, fmt.Errorf("telemetry: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v > SchemaVersion {
		return nil, fmt.Errorf("telemetry: schema %d newer than supported %d", v, SchemaVersion)
	}
	var out []Event
	var rec [binaryRecordSize]byte
	for i := 1; ; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("telemetry: record %d: %w", i, err)
		}
		typ := EventType(rec[12])
		if typ == EvNone || typ >= numEventTypes {
			return nil, fmt.Errorf("telemetry: record %d: invalid event type %d", i, rec[12])
		}
		out = append(out, Event{
			Time:  math.Float64frombits(binary.LittleEndian.Uint64(rec[0:8])),
			Node:  packet.NodeID(int32(binary.LittleEndian.Uint32(rec[8:12]))),
			Type:  typ,
			Kept:  rec[13] != 0,
			Msg:   packet.MessageID(binary.LittleEndian.Uint64(rec[14:22])),
			Peer:  packet.NodeID(int32(binary.LittleEndian.Uint32(rec[22:26]))),
			FTD:   math.Float64frombits(binary.LittleEndian.Uint64(rec[26:34])),
			Value: math.Float64frombits(binary.LittleEndian.Uint64(rec[34:42])),
			Count: int32(binary.LittleEndian.Uint32(rec[42:46])),
			Aux:   int32(binary.LittleEndian.Uint32(rec[46:50])),
		})
	}
}
