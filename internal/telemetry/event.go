// Package telemetry is the simulator's typed observability layer: trace v2.
//
// Where internal/trace emits free-form tab-separated strings, telemetry
// emits schema-versioned Events with structured fields, so tools can query
// a run instead of grepping it. The package provides
//
//   - the Event model and the Recorder interface the protocol stack emits
//     into (the Nop recorder is allocation-free, so untraced runs pay
//     nothing);
//   - two on-disk encodings — JSONL for greppability and a compact binary
//     framing for bulk runs — with auto-detecting readers;
//   - a provenance Ledger reconstructing each message's custody chain
//     (origin → relays → sink/drop) from the event stream;
//   - a metrics Registry of counters, gauges and fixed-bucket histograms,
//     periodically snapshotted into a time series via the simulation
//     kernel's post-event hook.
//
// cmd/dftstats is the offline analysis front-end for trace-v2 files.
package telemetry

import "dftmsn/internal/packet"

// SchemaVersion identifies the trace-v2 event schema. Readers reject files
// written with a newer schema.
const SchemaVersion = 2

// EventType enumerates the trace-v2 event catalog.
type EventType uint8

// The event catalog. See docs/PROTOCOL.md §10 for field semantics per type.
const (
	// EvNone is the zero value and never appears in a valid trace.
	EvNone EventType = iota
	// EvGen: node sensed a message and its queue accepted it. Msg set.
	EvGen
	// EvGenDrop: node sensed a message but the queue rejected it. Msg set.
	EvGenDrop
	// EvTx: node multicast a data message to a receiver set. Msg set,
	// Count = scheduled receivers.
	EvTx
	// EvRx: node received a scheduled data copy. Msg and Peer (sender)
	// set, FTD = the copy's assigned Eq. 2 FTD, Kept = queue accepted it.
	EvRx
	// EvTxOutcome: the sender's ACK window closed. Count = scheduled
	// receivers, Aux = acknowledged receivers.
	EvTxOutcome
	// EvDrop: a queued copy left the queue by a drop rule. Msg set, FTD =
	// the copy's FTD at drop time, Aux = a DropReason.
	EvDrop
	// EvDeliver: a sink took custody of a message. Msg set, Value =
	// generation-to-sink delay in seconds, Count = hop count.
	EvDeliver
	// EvSleep: node turned its radio off for Value seconds (§4.1).
	EvSleep
	// EvWake: node's radio finished powering back up.
	EvWake
	// EvCrash: fault injection took the node down recoverably. Count =
	// queued copies destroyed with it.
	EvCrash
	// EvReboot: a crashed node recovered.
	EvReboot
	// EvKill: fault injection took the node down for good.
	EvKill
	// EvDied: the node exhausted its battery. Value = the budget in joules.
	EvDied
	// EvCTS: node answered an RTS with a CTS. Peer = the RTS sender,
	// Value = the replier's delivery probability ξ.
	EvCTS
	// EvAck: node acknowledged a received data copy. Msg and Peer (the
	// data sender) set.
	EvAck
	// EvFTDUpdate: the sender recomputed its retained copy's FTD after a
	// multicast (Eq. 3). Msg set, Value = FTD before, FTD = FTD after,
	// Kept = the copy stayed queued.
	EvFTDUpdate

	numEventTypes // sentinel, keep last
)

// DropReason codes the Aux field of EvDrop.
const (
	// DropThreshold: the copy's FTD exceeded the §3.1.2 drop bound.
	DropThreshold int32 = 1
	// DropFull: the queue overflowed and the copy sorted last.
	DropFull int32 = 2
	// DropCrash: a node crash destroyed the queued copy.
	DropCrash int32 = 3
)

// DropReasonString names a drop reason code.
func DropReasonString(r int32) string {
	switch r {
	case DropThreshold:
		return "threshold"
	case DropFull:
		return "full"
	case DropCrash:
		return "crash"
	default:
		return "unknown"
	}
}

var eventNames = [numEventTypes]string{
	EvNone:      "none",
	EvGen:       "gen",
	EvGenDrop:   "gen-drop",
	EvTx:        "tx",
	EvRx:        "rx",
	EvTxOutcome: "tx-outcome",
	EvDrop:      "drop",
	EvDeliver:   "deliver",
	EvSleep:     "sleep",
	EvWake:      "wake",
	EvCrash:     "crash",
	EvReboot:    "reboot",
	EvKill:      "kill",
	EvDied:      "died",
	EvCTS:       "cts",
	EvAck:       "ack",
	EvFTDUpdate: "ftd-update",
}

// String returns the wire name of the event type.
func (t EventType) String() string {
	if t < numEventTypes {
		return eventNames[t]
	}
	return "invalid"
}

// ParseEventType resolves a wire name; ok is false for unknown names.
func ParseEventType(s string) (EventType, bool) {
	for t := EventType(1); t < numEventTypes; t++ {
		if eventNames[t] == s {
			return t, true
		}
	}
	return EvNone, false
}

// EventTypes lists every valid event type in catalog order.
func EventTypes() []EventType {
	out := make([]EventType, 0, numEventTypes-1)
	for t := EventType(1); t < numEventTypes; t++ {
		out = append(out, t)
	}
	return out
}

// Event is one typed trace-v2 record. Which fields are meaningful depends
// on Type (see the catalog above); unused fields are zero. Events are plain
// values: recording one through the Nop recorder allocates nothing.
type Event struct {
	// Time is the virtual time of the event in seconds.
	Time float64
	// Node is the node the event happened at.
	Node packet.NodeID
	// Type selects the catalog entry.
	Type EventType
	// Msg is the message concerned (0 = none; message IDs start at 1).
	Msg packet.MessageID
	// Peer is the counterpart node for rx/cts/ack events.
	Peer packet.NodeID
	// FTD is a fault-tolerance degree (rx: assigned copy FTD; drop: FTD at
	// drop time; ftd-update: FTD after the Eq. 3 update).
	FTD float64
	// Value is a type-specific scalar (sleep: duration s; deliver: delay s;
	// died: joules; cts: ξ; ftd-update: FTD before the update).
	Value float64
	// Count is a type-specific count (tx/tx-outcome: scheduled receivers;
	// deliver: hops; crash: copies destroyed).
	Count int32
	// Aux is a secondary count or code (tx-outcome: ACKed receivers;
	// drop: DropReason).
	Aux int32
	// Kept reports whether the copy stayed queued (rx, ftd-update).
	Kept bool
}

// hasPeer reports whether the type's Peer field is meaningful (and must be
// preserved on the wire even when zero — node 0 is a valid node).
func (t EventType) hasPeer() bool {
	return t == EvRx || t == EvCTS || t == EvAck
}
