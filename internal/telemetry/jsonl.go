package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// jsonlHeader is the first line of a JSONL trace-v2 file.
type jsonlHeader struct {
	Schema int    `json:"schema"`
	Format string `json:"format"`
}

const jsonlFormatName = "dftmsn-trace"

// JSONLWriter emits trace-v2 events as one JSON object per line, preceded
// by a schema header line. Fields that are zero and carry no information
// for the event type are omitted. It is safe for concurrent use.
//
// The first write error is captured and surfaced by Flush; tracing never
// aborts a run.
type JSONLWriter struct {
	mu     sync.Mutex
	w      *bufio.Writer
	buf    []byte
	n      uint64
	max    uint64
	err    error
	header bool
}

var _ Recorder = (*JSONLWriter)(nil)

// NewJSONL wraps w. maxEvents caps output to guard against runaway traces;
// zero means unlimited.
func NewJSONL(w io.Writer, maxEvents uint64) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w), max: maxEvents, buf: make([]byte, 0, 256)}
}

// Record implements Recorder.
func (t *JSONLWriter) Record(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.max > 0 && t.n >= t.max {
		return
	}
	if !t.header {
		t.header = true
		t.write([]byte(fmt.Sprintf("{\"schema\":%d,\"format\":%q}\n", SchemaVersion, jsonlFormatName)))
	}
	t.n++
	b := AppendJSON(t.buf[:0], ev)
	b = append(b, '\n')
	t.buf = b
	t.write(b)
}

// AppendJSON appends the canonical single-line JSON encoding of ev to dst
// and returns the extended slice (no trailing newline). This is the exact
// line format JSONLWriter emits after its header; the SSE stream framing
// reuses it so live and at-rest encodings stay byte-identical.
func AppendJSON(dst []byte, ev Event) []byte {
	b := dst
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, ev.Time, 'f', 6, 64)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(ev.Node), 10)
	b = append(b, `,"ev":"`...)
	b = append(b, ev.Type.String()...)
	b = append(b, '"')
	if ev.Msg != 0 {
		b = append(b, `,"msg":`...)
		b = strconv.AppendUint(b, uint64(ev.Msg), 10)
	}
	if ev.Type.hasPeer() {
		b = append(b, `,"peer":`...)
		b = strconv.AppendInt(b, int64(ev.Peer), 10)
	}
	if ev.FTD != 0 {
		b = append(b, `,"ftd":`...)
		b = strconv.AppendFloat(b, ev.FTD, 'g', -1, 64)
	}
	if ev.Value != 0 {
		b = append(b, `,"val":`...)
		b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
	}
	if ev.Count != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(ev.Count), 10)
	}
	if ev.Aux != 0 {
		b = append(b, `,"aux":`...)
		b = strconv.AppendInt(b, int64(ev.Aux), 10)
	}
	if ev.Kept {
		b = append(b, `,"kept":true`...)
	}
	return append(b, '}')
}

// write appends to the buffered writer, capturing the first error.
func (t *JSONLWriter) write(b []byte) {
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// Events returns the number of events written (after capping).
func (t *JSONLWriter) Events() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Flush drains buffered output and returns the first error encountered by
// any write since construction.
func (t *JSONLWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); t.err == nil && err != nil {
		t.err = err
	}
	return t.err
}

// jsonEvent mirrors the wire object for decoding.
type jsonEvent struct {
	T    float64 `json:"t"`
	Node int32   `json:"node"`
	Ev   string  `json:"ev"`
	Msg  uint64  `json:"msg"`
	Peer int32   `json:"peer"`
	FTD  float64 `json:"ftd"`
	Val  float64 `json:"val"`
	N    int32   `json:"n"`
	Aux  int32   `json:"aux"`
	Kept bool    `json:"kept"`
}

// readJSONL parses a JSONL trace-v2 stream positioned at the header line.
func readJSONL(r *bufio.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		return nil, fmt.Errorf("telemetry: empty trace file")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("telemetry: header: %w", err)
	}
	if hdr.Format != jsonlFormatName {
		return nil, fmt.Errorf("telemetry: unknown format %q", hdr.Format)
	}
	if hdr.Schema > SchemaVersion {
		return nil, fmt.Errorf("telemetry: schema %d newer than supported %d", hdr.Schema, SchemaVersion)
	}
	var out []Event
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := ParseJSONEvent(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return out, nil
}

// ParseJSONEvent decodes one JSONL event line (the format AppendJSON
// emits). It is the inverse used by both trace-file readers and the SSE
// stream decoder.
func ParseJSONEvent(line []byte) (Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(line, &je); err != nil {
		return Event{}, err
	}
	typ, ok := ParseEventType(je.Ev)
	if !ok {
		return Event{}, fmt.Errorf("unknown event %q", je.Ev)
	}
	return Event{
		Time:  je.T,
		Node:  nodeID(je.Node),
		Type:  typ,
		Msg:   messageID(je.Msg),
		Peer:  nodeID(je.Peer),
		FTD:   je.FTD,
		Value: je.Val,
		Count: je.N,
		Aux:   je.Aux,
		Kept:  je.Kept,
	}, nil
}
