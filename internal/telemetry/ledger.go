package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"dftmsn/internal/packet"
)

// Custody is one message's provenance: every trace-v2 event that concerns
// it, in (time, stream) order, plus derived summary facts. Because DFT-MSN
// replicates copies, the "chain" is really a tree — Steps is its
// chronological flattening, with each rx step naming the sending peer.
type Custody struct {
	// ID is the message.
	ID packet.MessageID
	// Origin is the sensing node (the node of the gen/gen-drop event).
	Origin packet.NodeID
	// GeneratedAt is the sensing time.
	GeneratedAt float64
	// Accepted reports whether the origin's queue took the message at all.
	Accepted bool
	// Relays counts custody transfers that stuck (rx events with Kept).
	Relays int
	// Drops counts copies destroyed by any drop rule (threshold, overflow,
	// crash).
	Drops int
	// Delivered reports whether any copy reached a sink.
	Delivered bool
	// DeliveredAt is the first sink-custody time (if Delivered).
	DeliveredAt float64
	// Delay is the generation-to-sink delay in seconds (if Delivered).
	Delay float64
	// Steps is every event mentioning the message, chronological.
	Steps []Event
}

// Status summarizes the message's fate in one word.
func (c *Custody) Status() string {
	switch {
	case c.Delivered:
		return "delivered"
	case !c.Accepted && len(c.Steps) <= 1:
		return "rejected"
	case c.Drops > 0:
		return "dropped"
	default:
		return "in-flight"
	}
}

// Format renders the custody chain as a human-readable multi-line block.
func (c *Custody) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "message %d: origin node %d, generated t=%.3f, %s",
		c.ID, c.Origin, c.GeneratedAt, c.Status())
	if c.Delivered {
		fmt.Fprintf(&b, " (delay %.3fs)", c.Delay)
	}
	b.WriteByte('\n')
	for _, ev := range c.Steps {
		fmt.Fprintf(&b, "  t=%10.3f  node %-4d %s\n", ev.Time, ev.Node, formatStep(ev))
	}
	return b.String()
}

// formatStep renders one custody step without the time/node prefix.
func formatStep(ev Event) string {
	switch ev.Type {
	case EvGen:
		return "gen (queued at origin)"
	case EvGenDrop:
		return "gen-drop (origin queue rejected)"
	case EvTx:
		return fmt.Sprintf("tx to %d receiver(s)", ev.Count)
	case EvRx:
		kept := "kept"
		if !ev.Kept {
			kept = "discarded"
		}
		return fmt.Sprintf("rx from node %d (ftd=%.3f, %s)", ev.Peer, ev.FTD, kept)
	case EvAck:
		return fmt.Sprintf("ack to node %d", ev.Peer)
	case EvFTDUpdate:
		kept := "kept"
		if !ev.Kept {
			kept = "dropped"
		}
		return fmt.Sprintf("ftd-update %.3f -> %.3f at sender (%s)", ev.Value, ev.FTD, kept)
	case EvDrop:
		return fmt.Sprintf("drop (%s, ftd=%.3f)", DropReasonString(ev.Aux), ev.FTD)
	case EvDeliver:
		return fmt.Sprintf("deliver at sink (delay=%.3fs)", ev.Value)
	default:
		return ev.Type.String()
	}
}

// Ledger indexes a run's events by message, reconstructing provenance.
type Ledger struct {
	byID  map[packet.MessageID]*Custody
	order []packet.MessageID
}

// BuildLedger folds an event stream (as read from a trace-v2 file, already
// in time order) into per-message custody records. Events that concern no
// message (sleep, wake, node lifecycle, cts) are ignored.
func BuildLedger(events []Event) *Ledger {
	l := &Ledger{byID: make(map[packet.MessageID]*Custody)}
	for _, ev := range events {
		if ev.Msg == 0 {
			continue
		}
		c := l.byID[ev.Msg]
		if c == nil {
			c = &Custody{ID: ev.Msg}
			l.byID[ev.Msg] = c
			l.order = append(l.order, ev.Msg)
		}
		c.Steps = append(c.Steps, ev)
		switch ev.Type {
		case EvGen:
			c.Origin = ev.Node
			c.GeneratedAt = ev.Time
			c.Accepted = true
		case EvGenDrop:
			c.Origin = ev.Node
			c.GeneratedAt = ev.Time
		case EvRx:
			if ev.Kept {
				c.Relays++
			}
		case EvDrop:
			c.Drops++
		case EvDeliver:
			if !c.Delivered {
				c.Delivered = true
				c.DeliveredAt = ev.Time
				c.Delay = ev.Value
			}
		}
	}
	return l
}

// Message returns the custody record for a message, or nil if the trace
// never mentions it.
func (l *Ledger) Message(id packet.MessageID) *Custody {
	return l.byID[id]
}

// IDs lists every message in the trace, sorted.
func (l *Ledger) IDs() []packet.MessageID {
	out := append([]packet.MessageID(nil), l.order...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len is the number of distinct messages in the trace.
func (l *Ledger) Len() int { return len(l.byID) }
