package telemetry

import (
	"strings"
	"testing"
)

// ledgerEvents is a hand-built run: message 1 is relayed then delivered,
// message 2 is dropped by the FTD threshold at a relay, message 3 is
// rejected at the origin.
func ledgerEvents() []Event {
	return []Event{
		{Time: 1.0, Node: 4, Type: EvGen, Msg: 1},
		{Time: 1.5, Node: 5, Type: EvGen, Msg: 2},
		{Time: 2.0, Node: 6, Type: EvGenDrop, Msg: 3},
		{Time: 3.0, Node: 4, Type: EvTx, Msg: 1, Count: 1},
		{Time: 3.0, Node: 7, Type: EvRx, Msg: 1, Peer: 4, FTD: 0.5, Kept: true},
		{Time: 3.0, Node: 7, Type: EvAck, Msg: 1, Peer: 4},
		{Time: 3.1, Node: 4, Type: EvFTDUpdate, Msg: 1, Value: 0.5, FTD: 0.75, Kept: true},
		{Time: 4.0, Node: 5, Type: EvTx, Msg: 2, Count: 1},
		{Time: 4.0, Node: 8, Type: EvRx, Msg: 2, Peer: 5, FTD: 0.4, Kept: true},
		{Time: 5.0, Node: 4, Type: EvDrop, Msg: 1, FTD: 0.96, Aux: DropThreshold},
		{Time: 6.0, Node: 8, Type: EvDrop, Msg: 2, FTD: 0.99, Aux: DropThreshold},
		{Time: 6.5, Node: 5, Type: EvDrop, Msg: 2, FTD: 0.8, Aux: DropFull},
		{Time: 7.0, Node: 0, Type: EvDeliver, Msg: 1, Value: 6.0, Count: 2},
	}
}

func TestLedgerDeliveredChain(t *testing.T) {
	l := BuildLedger(ledgerEvents())
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	c := l.Message(1)
	if c == nil {
		t.Fatal("message 1 missing")
	}
	if c.Origin != 4 || c.GeneratedAt != 1.0 || !c.Accepted {
		t.Errorf("origin facts: %+v", c)
	}
	if !c.Delivered || c.DeliveredAt != 7.0 || c.Delay != 6.0 {
		t.Errorf("delivery facts: %+v", c)
	}
	if c.Relays != 1 || c.Drops != 1 {
		t.Errorf("relays=%d drops=%d, want 1, 1", c.Relays, c.Drops)
	}
	if got := c.Status(); got != "delivered" {
		t.Errorf("Status = %q", got)
	}
	// The chain flattening must preserve order: gen → tx → rx → ... → deliver.
	if c.Steps[0].Type != EvGen || c.Steps[len(c.Steps)-1].Type != EvDeliver {
		t.Errorf("chain endpoints wrong: %v ... %v", c.Steps[0].Type, c.Steps[len(c.Steps)-1].Type)
	}
	out := c.Format()
	for _, want := range []string{
		"message 1: origin node 4, generated t=1.000, delivered (delay 6.000s)",
		"rx from node 4",
		"drop (threshold, ftd=0.960)",
		"deliver at sink (delay=6.000s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
}

func TestLedgerDroppedChain(t *testing.T) {
	l := BuildLedger(ledgerEvents())
	c := l.Message(2)
	if c == nil {
		t.Fatal("message 2 missing")
	}
	if c.Delivered {
		t.Error("message 2 should not be delivered")
	}
	if c.Drops != 2 || c.Relays != 1 {
		t.Errorf("drops=%d relays=%d, want 2, 1", c.Drops, c.Relays)
	}
	if got := c.Status(); got != "dropped" {
		t.Errorf("Status = %q", got)
	}
	out := c.Format()
	for _, want := range []string{
		"message 2: origin node 5, generated t=1.500, dropped",
		"drop (threshold, ftd=0.990)",
		"drop (full, ftd=0.800)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
}

func TestLedgerRejectedAndUnknown(t *testing.T) {
	l := BuildLedger(ledgerEvents())
	c := l.Message(3)
	if c == nil {
		t.Fatal("message 3 missing")
	}
	if c.Accepted || c.Status() != "rejected" {
		t.Errorf("message 3: accepted=%v status=%q", c.Accepted, c.Status())
	}
	if l.Message(99) != nil {
		t.Error("unknown message should be nil")
	}
	ids := l.IDs()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestLedgerInFlight(t *testing.T) {
	l := BuildLedger([]Event{
		{Time: 1.0, Node: 4, Type: EvGen, Msg: 1},
	})
	if got := l.Message(1).Status(); got != "in-flight" {
		t.Errorf("Status = %q, want in-flight", got)
	}
}
