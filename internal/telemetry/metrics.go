package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Counter is a monotonically increasing total.
type Counter struct {
	name string
	v    float64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(d float64) {
	if d > 0 {
		c.v += d
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a point-in-time level.
type Gauge struct {
	name string
	v    float64
}

// Set replaces the level.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current level.
func (g *Gauge) Value() float64 { return g.v }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Histogram counts observations into fixed buckets with inclusive upper
// bounds (Prometheus "le" semantics); observations above the last bound
// land in an implicit +Inf overflow bucket. Fixed bounds make histograms
// from parallel runs mergeable.
type Histogram struct {
	name   string
	uppers []float64
	counts []uint64 // len(uppers)+1; last = overflow
	sum    float64
	n      uint64
	min    float64
	max    float64
}

// LinearBuckets returns n inclusive upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExponentialBuckets returns n inclusive upper bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

func newHistogram(name string, uppers []float64) *Histogram {
	if len(uppers) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(uppers) {
		panic("telemetry: histogram bounds must be sorted")
	}
	return &Histogram{
		name:   name,
		uppers: append([]float64(nil), uppers...),
		counts: make([]uint64, len(uppers)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first bound >= v (inclusive upper)
	h.counts[i]++
	h.sum += v
	h.n++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation, or 0 with no observations.
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Bucket is one (upper bound, count) pair; Upper is +Inf for the overflow
// bucket.
type Bucket struct {
	Upper float64
	Count uint64
}

// Buckets returns the bucket table including the overflow bucket.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	for i, c := range h.counts {
		u := math.Inf(1)
		if i < len(h.uppers) {
			u = h.uppers[i]
		}
		out[i] = Bucket{Upper: u, Count: c}
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the owning bucket, clamped to the observed min/max so sparse
// histograms don't report impossible values. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.n)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := h.min
		if i > 0 {
			lo = math.Max(lo, h.uppers[i-1])
		}
		hi := h.max
		if i < len(h.uppers) {
			hi = math.Min(hi, h.uppers[i])
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.max
}

// MergeFrom folds another histogram with identical bounds into this one.
func (h *Histogram) MergeFrom(o *Histogram) error {
	if len(h.uppers) != len(o.uppers) {
		return fmt.Errorf("telemetry: merge %s: bucket count %d != %d", h.name, len(h.uppers), len(o.uppers))
	}
	for i := range h.uppers {
		if h.uppers[i] != o.uppers[i] {
			return fmt.Errorf("telemetry: merge %s: bound %d differs (%g != %g)", h.name, i, h.uppers[i], o.uppers[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.sum += o.sum
	h.n += o.n
	if o.n > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	return nil
}

// Registry holds a run's named metrics in registration order, so column
// layouts and printed reports are deterministic.
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	byName   map[string]interface{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]interface{})}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: %s already registered as %T", name, m))
		}
		return c
	}
	c := &Counter{name: name}
	r.byName[name] = c
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: %s already registered as %T", name, m))
		}
		return g
	}
	g := &Gauge{name: name}
	r.byName[name] = g
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram returns the named histogram, registering it with the given
// bounds on first use. Re-registering with different bounds panics.
func (r *Registry) Histogram(name string, uppers []float64) *Histogram {
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: %s already registered as %T", name, m))
		}
		return h
	}
	h := newHistogram(name, uppers)
	r.byName[name] = h
	r.hists = append(r.hists, h)
	return h
}

// Counters lists registered counters in registration order.
func (r *Registry) Counters() []*Counter { return r.counters }

// Gauges lists registered gauges in registration order.
func (r *Registry) Gauges() []*Gauge { return r.gauges }

// Histograms lists registered histograms in registration order.
func (r *Registry) Histograms() []*Histogram { return r.hists }

// Columns names the time-series columns: counters then gauges, in
// registration order.
func (r *Registry) Columns() []string {
	out := make([]string, 0, len(r.counters)+len(r.gauges))
	for _, c := range r.counters {
		out = append(out, c.name)
	}
	for _, g := range r.gauges {
		out = append(out, g.name)
	}
	return out
}

// Snapshot captures the current counter and gauge values in column order.
func (r *Registry) Snapshot() []float64 {
	out := make([]float64, 0, len(r.counters)+len(r.gauges))
	for _, c := range r.counters {
		out = append(out, c.v)
	}
	for _, g := range r.gauges {
		out = append(out, g.v)
	}
	return out
}

// Sample is one time-series row.
type Sample struct {
	Time   float64
	Values []float64
}

// Series is a periodically sampled time series of a registry's counters
// and gauges.
type Series struct {
	Columns []string
	Samples []Sample
}

// WriteCSV emits the series with a header row ("t" plus the columns).
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "t"); err != nil {
		return err
	}
	for _, c := range s.Columns {
		if _, err := io.WriteString(w, ","+c); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, row := range s.Samples {
		if _, err := io.WriteString(w, strconv.FormatFloat(row.Time, 'g', -1, 64)); err != nil {
			return err
		}
		for _, v := range row.Values {
			if _, err := io.WriteString(w, ","+strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Sampler snapshots a registry at a fixed virtual-time interval. Drive it
// from the simulation kernel's post-event hook (sim.SetEventHook) by
// calling Tick with the current virtual time; the update callback runs
// before each snapshot so gauges can be refreshed from live state.
type Sampler struct {
	reg      *Registry
	interval float64
	next     float64
	update   func(now float64)
	series   Series
}

// NewSampler samples reg every interval seconds of virtual time. update
// may be nil.
func NewSampler(reg *Registry, interval float64, update func(now float64)) *Sampler {
	if interval <= 0 {
		panic("telemetry: sampler interval must be positive")
	}
	return &Sampler{reg: reg, interval: interval, update: update, series: Series{Columns: reg.Columns()}}
}

// Tick advances the sampler to virtual time now, emitting every snapshot
// that came due. Call it after each kernel event; repeated calls with the
// same time are cheap.
func (s *Sampler) Tick(now float64) {
	for now >= s.next {
		if s.update != nil {
			s.update(s.next)
		}
		s.series.Columns = s.reg.Columns() // metrics may register lazily
		s.series.Samples = append(s.series.Samples, Sample{Time: s.next, Values: s.reg.Snapshot()})
		s.next += s.interval
	}
}

// Finish takes a final snapshot at end time and returns the series.
func (s *Sampler) Finish(end float64) *Series {
	if s.update != nil {
		s.update(end)
	}
	s.series.Columns = s.reg.Columns()
	s.series.Samples = append(s.series.Samples, Sample{Time: end, Values: s.reg.Snapshot()})
	out := s.series
	return &out
}
