package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries locks the inclusive-upper ("le")
// semantics: a value equal to a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram("x", LinearBuckets(1, 1, 3)) // bounds 1, 2, 3 (+Inf)
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 3.0, 3.0001, 100} {
		h.Observe(v)
	}
	got := h.Buckets()
	wantCounts := []uint64{2, 2, 1, 2} // le=1: {0.5, 1.0}; le=2: {1.0001, 2.0}; le=3: {3.0}; +Inf: {3.0001, 100}
	for i, w := range wantCounts {
		if got[i].Count != w {
			t.Errorf("bucket %d (le=%g): count %d, want %d", i, got[i].Upper, got[i].Count, w)
		}
	}
	if !math.IsInf(got[3].Upper, 1) {
		t.Errorf("last bucket bound = %g, want +Inf", got[3].Upper)
	}
	if h.Count() != 7 || h.Min() != 0.5 || h.Max() != 100 {
		t.Errorf("count=%d min=%g max=%g", h.Count(), h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram("x", LinearBuckets(1, 1, 3))
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram should report zeros: mean=%g p50=%g min=%g max=%g",
			h.Mean(), h.Quantile(0.5), h.Min(), h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram("x", LinearBuckets(10, 10, 10)) // 10..100
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct{ q, lo, hi float64 }{
		{0, 1, 1},       // min
		{0.5, 45, 55},   // median ~50
		{0.9, 85, 95},   // p90 ~90
		{1, 100, 100},   // max
		{0.25, 20, 30},  // p25 ~25
		{0.99, 95, 100}, // p99
	} {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("Quantile(%g) = %g, want in [%g, %g]", tc.q, got, tc.lo, tc.hi)
		}
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := newHistogram("x", LinearBuckets(10, 10, 4))
	h.Observe(17)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 17 {
			t.Errorf("Quantile(%g) = %g, want 17 (clamped to observed range)", q, got)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := newHistogram("x", LinearBuckets(1, 1, 3))
	b := newHistogram("x", LinearBuckets(1, 1, 3))
	a.Observe(0.5)
	b.Observe(2.5)
	b.Observe(9)
	if err := a.MergeFrom(b); err != nil {
		t.Fatalf("MergeFrom: %v", err)
	}
	if a.Count() != 3 || a.Min() != 0.5 || a.Max() != 9 || a.Sum() != 12 {
		t.Errorf("merged: count=%d min=%g max=%g sum=%g", a.Count(), a.Min(), a.Max(), a.Sum())
	}
	c := newHistogram("x", LinearBuckets(2, 2, 3))
	if err := a.MergeFrom(c); err == nil {
		t.Error("merge with different bounds should fail")
	}
	d := newHistogram("x", LinearBuckets(1, 1, 4))
	if err := a.MergeFrom(d); err == nil {
		t.Error("merge with different bucket count should fail")
	}
}

func TestRegistryOrderAndKinds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	g := r.Gauge("b")
	r.Counter("c_total")
	if r.Counter("a_total") != c || r.Gauge("b") != g {
		t.Error("get-or-create should return the same metric")
	}
	cols := r.Columns()
	want := []string{"a_total", "c_total", "b"}
	if len(cols) != 3 || cols[0] != want[0] || cols[1] != want[1] || cols[2] != want[2] {
		t.Errorf("Columns = %v, want %v", cols, want)
	}
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	g.Set(7)
	snap := r.Snapshot()
	if snap[0] != 3 || snap[1] != 0 || snap[2] != 7 {
		t.Errorf("Snapshot = %v", snap)
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch should panic")
		}
	}()
	r.Gauge("a_total")
}

func TestSamplerAndCSV(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total")
	g := r.Gauge("level")
	var updates int
	s := NewSampler(r, 10, func(now float64) {
		updates++
		g.Set(now)
	})
	c.Inc()
	s.Tick(0) // due at t=0
	c.Inc()
	s.Tick(25) // emits t=10 and t=20
	series := s.Finish(30)
	if updates != 4 {
		t.Errorf("updates = %d, want 4", updates)
	}
	if len(series.Samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(series.Samples))
	}
	if series.Samples[1].Time != 10 || series.Samples[1].Values[0] != 2 {
		t.Errorf("sample 1 = %+v", series.Samples[1])
	}
	var sb strings.Builder
	if err := series.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "t,events_total,level" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Errorf("CSV rows = %d, want 5:\n%s", len(lines), out)
	}
	if lines[4] != "30,2,30" {
		t.Errorf("final row = %q", lines[4])
	}
}

func TestRunMetricsRecordAndMerge(t *testing.T) {
	a := NewRunRegistry(1000, 16)
	for _, ev := range []Event{
		{Type: EvGen, Msg: 1},
		{Type: EvDeliver, Msg: 1, Value: 42},
		{Type: EvSleep, Value: 3},
		{Type: EvDrop, Msg: 2, FTD: 0.9, Aux: DropThreshold},
		{Type: EvNone}, // ignored
	} {
		a.Record(ev)
	}
	if a.EventCount(EvGen) != 1 || a.EventCount(EvDeliver) != 1 || a.EventCount(EvNone) != 0 {
		t.Errorf("counts: gen=%g deliver=%g", a.EventCount(EvGen), a.EventCount(EvDeliver))
	}
	if a.DeliveryDelay.Count() != 1 || a.DeliveryDelay.Sum() != 42 {
		t.Errorf("delay hist: n=%d sum=%g", a.DeliveryDelay.Count(), a.DeliveryDelay.Sum())
	}
	if a.FTDAtDrop.Count() != 1 || a.SleepDuration.Count() != 1 {
		t.Error("drop/sleep histograms not fed")
	}

	b := NewRunRegistry(1000, 16)
	b.Record(Event{Type: EvDeliver, Msg: 3, Value: 10})
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.DeliveryDelay.Count() != 2 || a.EventCount(EvDeliver) != 2 {
		t.Errorf("after merge: delay n=%d, deliver=%g", a.DeliveryDelay.Count(), a.EventCount(EvDeliver))
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("Merge(nil): %v", err)
	}
	// Different duration → different delay bounds → merge must fail.
	c := NewRunRegistry(500, 16)
	if err := a.Merge(c); err == nil {
		t.Error("merge across durations should fail")
	}
}

func TestMergeReports(t *testing.T) {
	mk := func(delay float64) *Report {
		m := NewRunRegistry(100, 8)
		m.Record(Event{Type: EvDeliver, Msg: 1, Value: delay})
		return &Report{Run: m, Events: 5}
	}
	agg, err := MergeReports([]*Report{nil, mk(10), {Run: nil}, mk(20)})
	if err != nil {
		t.Fatalf("MergeReports: %v", err)
	}
	if agg == nil || agg.Run.DeliveryDelay.Count() != 2 || agg.Events != 10 {
		t.Errorf("aggregate = %+v", agg)
	}
	empty, err := MergeReports(nil)
	if err != nil || empty != nil {
		t.Errorf("empty aggregate = %v, %v", empty, err)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
}
