package telemetry

import (
	"io"
	"math"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) rendering for the
// metrics registry. The registry's histograms store per-bucket counts with
// inclusive upper bounds; the exposition format wants cumulative
// "le"-labelled buckets, so the renderer cumulates on the way out.

// PromLabel is one label pair on a sample.
type PromLabel struct{ Name, Value string }

// promName sanitizes a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && i > 0) {
			continue
		}
		ok = false
		break
	}
	if ok && len(name) > 0 {
		return name
	}
	b := []byte(name)
	for i, c := range b {
		valid := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && i > 0)
		if !valid {
			b[i] = '_'
		}
	}
	if len(b) == 0 {
		return "_"
	}
	return string(b)
}

// appendPromValue formats v the way Prometheus expects: integral values
// without an exponent, +Inf/-Inf/NaN spelled out.
func appendPromValue(dst []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(dst, "+Inf"...)
	case math.IsInf(v, -1):
		return append(dst, "-Inf"...)
	case math.IsNaN(v):
		return append(dst, "NaN"...)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// AppendPromType appends a "# TYPE name kind" header line.
func AppendPromType(dst []byte, name, kind string) []byte {
	dst = append(dst, "# TYPE "...)
	dst = append(dst, promName(name)...)
	dst = append(dst, ' ')
	dst = append(dst, kind...)
	return append(dst, '\n')
}

// AppendPromSample appends one sample line: name{labels} value.
func AppendPromSample(dst []byte, name string, labels []PromLabel, v float64) []byte {
	dst = append(dst, promName(name)...)
	if len(labels) > 0 {
		dst = append(dst, '{')
		for i, l := range labels {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, promName(l.Name)...)
			dst = append(dst, '=')
			dst = strconv.AppendQuote(dst, l.Value)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, ' ')
	dst = appendPromValue(dst, v)
	return append(dst, '\n')
}

// AppendPromHistogram appends a full histogram family: cumulative
// "le"-labelled buckets (ending in +Inf), then _sum and _count. The TYPE
// header is the caller's job (AppendPromType once per family).
func AppendPromHistogram(dst []byte, name string, labels []PromLabel, h *Histogram) []byte {
	var cum uint64
	bucketLabels := make([]PromLabel, len(labels)+1)
	copy(bucketLabels, labels)
	for _, b := range h.Buckets() {
		cum += b.Count
		le := "+Inf"
		if !math.IsInf(b.Upper, 1) {
			le = strconv.FormatFloat(b.Upper, 'g', -1, 64)
		}
		bucketLabels[len(labels)] = PromLabel{Name: "le", Value: le}
		dst = AppendPromSample(dst, name+"_bucket", bucketLabels, float64(cum))
	}
	dst = AppendPromSample(dst, name+"_sum", labels, h.Sum())
	return AppendPromSample(dst, name+"_count", labels, float64(h.Count()))
}

// WritePrometheus renders every metric in the registry, in registration
// order, in the Prometheus text exposition format. prefix (e.g.
// "dftserve_") is prepended to every metric name; counters additionally
// get the conventional "_total" suffix. The caller owns HTTP concerns
// (content type "text/plain; version=0.0.4").
func WritePrometheus(w io.Writer, prefix string, r *Registry) error {
	var buf []byte
	for _, c := range r.Counters() {
		name := prefix + c.Name() + "_total"
		buf = AppendPromType(buf, name, "counter")
		buf = AppendPromSample(buf, name, nil, c.Value())
	}
	for _, g := range r.Gauges() {
		name := prefix + g.Name()
		buf = AppendPromType(buf, name, "gauge")
		buf = AppendPromSample(buf, name, nil, g.Value())
	}
	for _, h := range r.Histograms() {
		name := prefix + h.Name()
		buf = AppendPromType(buf, name, "histogram")
		buf = AppendPromHistogram(buf, name, nil, h)
	}
	_, err := w.Write(buf)
	return err
}
