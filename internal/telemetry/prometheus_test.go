package telemetry

import (
	"strings"
	"testing"
)

// TestWritePrometheus pins the exposition format for a registry exercising
// all three metric kinds: TYPE headers, counter _total suffix, cumulative
// le-labelled buckets ending in +Inf, and _sum/_count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_done").Add(3)
	r.Gauge("queue_depth").Set(2)
	h := r.Histogram("queue_wait_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)

	var sb strings.Builder
	if err := WritePrometheus(&sb, "dftserve_", r); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dftserve_jobs_done_total counter
dftserve_jobs_done_total 3
# TYPE dftserve_queue_depth gauge
dftserve_queue_depth 2
# TYPE dftserve_queue_wait_seconds histogram
dftserve_queue_wait_seconds_bucket{le="0.1"} 1
dftserve_queue_wait_seconds_bucket{le="1"} 3
dftserve_queue_wait_seconds_bucket{le="10"} 3
dftserve_queue_wait_seconds_bucket{le="+Inf"} 4
dftserve_queue_wait_seconds_sum 100.05
dftserve_queue_wait_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromSampleLabels checks label rendering and name sanitization.
func TestPromSampleLabels(t *testing.T) {
	got := string(AppendPromSample(nil, "jobs_submitted_total",
		[]PromLabel{{Name: "tenant", Value: `acme "1"`}}, 7))
	want := "jobs_submitted_total{tenant=\"acme \\\"1\\\"\"} 7\n"
	if got != want {
		t.Fatalf("sample %q, want %q", got, want)
	}
	if n := promName("9bad-name"); n != "_bad_name" {
		t.Fatalf("promName = %q", n)
	}
	if n := promName("fine_name:ok"); n != "fine_name:ok" {
		t.Fatalf("promName mangled a valid name: %q", n)
	}
}
