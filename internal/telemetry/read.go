package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"dftmsn/internal/packet"
)

// Format names the on-disk trace-v2 encodings.
type Format string

// The supported encodings.
const (
	FormatJSONL  Format = "jsonl"
	FormatBinary Format = "binary"
)

// ParseFormat resolves a -trace-format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatJSONL, FormatBinary:
		return Format(s), nil
	default:
		return "", fmt.Errorf("telemetry: unknown trace format %q (want jsonl or binary)", s)
	}
}

// FileWriter is the interface shared by the file-backed recorders.
type FileWriter interface {
	Recorder
	Events() uint64
	Flush() error
}

// NewWriter returns a recorder emitting the given encoding into w.
func NewWriter(w io.Writer, format Format, maxEvents uint64) (FileWriter, error) {
	switch format {
	case FormatJSONL:
		return NewJSONL(w, maxEvents), nil
	case FormatBinary:
		return NewBinary(w, maxEvents), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown trace format %q", format)
	}
}

// DetectFormat sniffs the encoding of a trace-v2 stream without consuming
// it. An error means the stream is neither encoding (e.g. legacy TSV).
func DetectFormat(r *bufio.Reader) (Format, error) {
	head, err := r.Peek(4)
	if err != nil && len(head) == 0 {
		return "", fmt.Errorf("telemetry: detect format: %w", err)
	}
	if string(head) == binaryMagic {
		return FormatBinary, nil
	}
	if len(head) > 0 && head[0] == '{' {
		return FormatJSONL, nil
	}
	return "", fmt.Errorf("telemetry: not a trace-v2 stream (leading bytes %q)", head)
}

// ReadAll decodes a whole trace-v2 stream, auto-detecting the encoding.
func ReadAll(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	format, err := DetectFormat(br)
	if err != nil {
		return nil, err
	}
	switch format {
	case FormatBinary:
		return readBinary(br)
	default:
		return readJSONL(br)
	}
}

// ReadFile decodes a trace-v2 file, auto-detecting the encoding.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

func nodeID(v int32) packet.NodeID        { return packet.NodeID(v) }
func messageID(v uint64) packet.MessageID { return packet.MessageID(v) }
