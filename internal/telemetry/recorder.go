package telemetry

import (
	"fmt"

	"dftmsn/internal/trace"
)

// Recorder receives typed simulation events. Implementations must not
// panic; tracing never aborts a run. Recorders used by a single simulation
// are called from one goroutine (the kernel's); the file-backed recorders
// are additionally safe for concurrent use so parallel sweep runs may share
// one for coarse debugging.
type Recorder interface {
	Record(ev Event)
}

// Nop discards all events. It is the default recorder everywhere; the
// Record call is allocation-free (guarded by a benchmark and an allocation
// test), so untraced runs pay nothing for the telemetry layer.
type Nop struct{}

var _ Recorder = Nop{}

// Record implements Recorder by doing nothing.
func (Nop) Record(Event) {}

// Multi fans every event out to several recorders in order.
type Multi []Recorder

var _ Recorder = Multi(nil)

// Record implements Recorder.
func (m Multi) Record(ev Event) {
	for _, r := range m {
		r.Record(ev)
	}
}

// Combine composes recorders, skipping nils: none yields Nop, one is
// returned unwrapped, several become a Multi.
func Combine(recs ...Recorder) Recorder {
	out := make(Multi, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			out = append(out, r)
		}
	}
	switch len(out) {
	case 0:
		return Nop{}
	case 1:
		return out[0]
	default:
		return out
	}
}

// Buffer collects events in memory — for tests and tools that post-process
// a single short run.
type Buffer struct {
	Events []Event
}

var _ Recorder = (*Buffer)(nil)

// Record implements Recorder.
func (b *Buffer) Record(ev Event) { b.Events = append(b.Events, ev) }

// LegacyAdapter renders typed events as the legacy free-form trace lines
// (internal/trace), so a trace.Writer attached to a run produces exactly
// the tab-separated output it always did. Event types the legacy format
// never carried (cts, ack, drop, deliver, ftd-update) are skipped, keeping
// legacy traces byte-compatible.
type LegacyAdapter struct {
	t trace.Tracer
}

var _ Recorder = (*LegacyAdapter)(nil)

// NewLegacyAdapter wraps a legacy tracer. A nil tracer yields a nil
// adapter, which Combine skips.
func NewLegacyAdapter(t trace.Tracer) *LegacyAdapter {
	if t == nil {
		return nil
	}
	return &LegacyAdapter{t: t}
}

// Record implements Recorder by emitting the historical (event, detail)
// string pair for the event types the legacy format defined.
func (a *LegacyAdapter) Record(ev Event) {
	switch ev.Type {
	case EvGen:
		a.t.Emit(ev.Time, ev.Node, "gen", fmt.Sprintf("msg=%d", ev.Msg))
	case EvGenDrop:
		a.t.Emit(ev.Time, ev.Node, "gen-drop", fmt.Sprintf("msg=%d", ev.Msg))
	case EvTx:
		a.t.Emit(ev.Time, ev.Node, "schedule", fmt.Sprintf("msg=%d receivers=%d", ev.Msg, ev.Count))
	case EvRx:
		a.t.Emit(ev.Time, ev.Node, "rx-data",
			fmt.Sprintf("msg=%d from=%d ftd=%.3f kept=%v", ev.Msg, ev.Peer, ev.FTD, ev.Kept))
	case EvTxOutcome:
		a.t.Emit(ev.Time, ev.Node, "tx-outcome", fmt.Sprintf("scheduled=%d acked=%d", ev.Count, ev.Aux))
	case EvSleep:
		a.t.Emit(ev.Time, ev.Node, "sleep", fmt.Sprintf("dur=%.3f", ev.Value))
	case EvWake:
		a.t.Emit(ev.Time, ev.Node, "wake", "")
	case EvCrash:
		a.t.Emit(ev.Time, ev.Node, "crash", fmt.Sprintf("lost=%d", ev.Count))
	case EvReboot:
		a.t.Emit(ev.Time, ev.Node, "recover", "")
	case EvKill:
		a.t.Emit(ev.Time, ev.Node, "killed", "")
	case EvDied:
		a.t.Emit(ev.Time, ev.Node, "died", fmt.Sprintf("joules=%.3f", ev.Value))
	}
}
