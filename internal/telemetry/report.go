package telemetry

import (
	"fmt"
	"strings"
)

// Standard histogram names used by NewRunRegistry; cmd/dftstats and the
// sweep aggregation refer to these.
const (
	HistDeliveryDelay  = "delivery_delay_s"
	HistQueueOccupancy = "queue_occupancy"
	HistXi             = "xi"
	HistFTDAtDrop      = "ftd_at_drop"
	HistSleepDuration  = "sleep_duration_s"
)

// RunMetrics is the standard per-run metrics set: one counter per event
// type, the paper's five distributional histograms (§5), and the gauges
// the periodic sampler tracks into a time series. It implements Recorder,
// folding the event stream directly; queue occupancy and ξ are sampled
// periodically by the scenario rather than event-driven.
type RunMetrics struct {
	Registry *Registry

	DeliveryDelay  *Histogram
	QueueOccupancy *Histogram
	Xi             *Histogram
	FTDAtDrop      *Histogram
	SleepDuration  *Histogram

	QueueLen   *Gauge
	MeanXi     *Gauge
	AliveNodes *Gauge

	// Kernel event counters, set once at the end of a run: how many events
	// the scheduler filed, fired, and elided (replayed in closed form by
	// the event-elision engine instead of firing). Point-in-time gauges,
	// so Merge keeps the receiver's values like the others.
	EventsScheduled *Gauge
	EventsFired     *Gauge
	EventsElided    *Gauge

	counters [numEventTypes]*Counter
}

var _ Recorder = (*RunMetrics)(nil)

// CounterName renders an event type's counter name ("gen-drop" →
// "gen_drop_total").
func CounterName(t EventType) string {
	return strings.ReplaceAll(t.String(), "-", "_") + "_total"
}

// NewRunRegistry builds the standard registry for a run of the given
// virtual duration (seconds) and per-node queue capacity. Runs with equal
// duration and capacity produce mergeable histograms, which is what the
// sweep aggregation relies on.
func NewRunRegistry(duration float64, queueCap int) *RunMetrics {
	if duration <= 0 {
		duration = 1
	}
	if queueCap <= 0 {
		queueCap = 32
	}
	r := NewRegistry()
	m := &RunMetrics{Registry: r}
	for t := EventType(1); t < numEventTypes; t++ {
		m.counters[t] = r.Counter(CounterName(t))
	}
	m.QueueLen = r.Gauge("queue_len_total")
	m.MeanXi = r.Gauge("mean_xi")
	m.AliveNodes = r.Gauge("alive_nodes")
	m.EventsScheduled = r.Gauge("kernel_events_scheduled")
	m.EventsFired = r.Gauge("kernel_events_fired")
	m.EventsElided = r.Gauge("kernel_events_elided")
	// 40 linear delay buckets spanning the run; overflow catches stragglers.
	m.DeliveryDelay = r.Histogram(HistDeliveryDelay, LinearBuckets(duration/40, duration/40, 40))
	occStep := float64(queueCap) / 32
	if occStep < 1 {
		occStep = 1
	}
	m.QueueOccupancy = r.Histogram(HistQueueOccupancy, LinearBuckets(0, occStep, 33))
	m.Xi = r.Histogram(HistXi, LinearBuckets(0.05, 0.05, 20))
	m.FTDAtDrop = r.Histogram(HistFTDAtDrop, LinearBuckets(0.05, 0.05, 20))
	m.SleepDuration = r.Histogram(HistSleepDuration, ExponentialBuckets(0.25, 2, 12))
	return m
}

// Record implements Recorder: counts every event and feeds the
// event-driven histograms.
func (m *RunMetrics) Record(ev Event) {
	if ev.Type == EvNone || ev.Type >= numEventTypes {
		return
	}
	m.counters[ev.Type].Inc()
	switch ev.Type {
	case EvDeliver:
		m.DeliveryDelay.Observe(ev.Value)
	case EvSleep:
		m.SleepDuration.Observe(ev.Value)
	case EvDrop:
		m.FTDAtDrop.Observe(ev.FTD)
	}
}

// EventCount returns how many events of a type were recorded.
func (m *RunMetrics) EventCount(t EventType) float64 {
	if t == EvNone || t >= numEventTypes {
		return 0
	}
	return m.counters[t].Value()
}

// Merge folds another run's metrics (same duration/capacity setup) into
// this one: histograms and counters add; gauges, being point-in-time,
// keep this run's values.
func (m *RunMetrics) Merge(o *RunMetrics) error {
	if o == nil {
		return nil
	}
	for _, pair := range [][2]*Histogram{
		{m.DeliveryDelay, o.DeliveryDelay},
		{m.QueueOccupancy, o.QueueOccupancy},
		{m.Xi, o.Xi},
		{m.FTDAtDrop, o.FTDAtDrop},
		{m.SleepDuration, o.SleepDuration},
	} {
		if err := pair[0].MergeFrom(pair[1]); err != nil {
			return err
		}
	}
	for t := EventType(1); t < numEventTypes; t++ {
		m.counters[t].Add(o.counters[t].Value())
	}
	return nil
}

// Report is a run's telemetry output: the folded metrics, the sampled
// time series (nil when sampling was off), and how many events were
// written to the trace file (0 when no file recorder was attached).
type Report struct {
	Run    *RunMetrics
	Series *Series
	Events uint64
}

// MergeReports aggregates per-run reports (e.g. across a sweep's parallel
// repetitions) into one: histograms and counters sum, series are dropped
// (they are per-run artifacts). Nil reports are skipped; returns nil if
// none carry metrics.
func MergeReports(reports []*Report) (*Report, error) {
	var out *Report
	for _, r := range reports {
		if r == nil || r.Run == nil {
			continue
		}
		if out == nil {
			out = &Report{Run: r.Run, Events: r.Events}
			continue
		}
		if err := out.Run.Merge(r.Run); err != nil {
			return nil, fmt.Errorf("telemetry: aggregate reports: %w", err)
		}
		out.Events += r.Events
	}
	return out, nil
}
