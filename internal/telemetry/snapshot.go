package telemetry

import (
	"fmt"
	"math"
)

// HistogramState is one histogram's snapshot: the observation tallies. The
// bucket bounds are configuration and are rebuilt, not serialized. Min/Max
// are carried as "finite?" pairs so the no-observation sentinels (±Inf)
// survive encodings that cannot represent infinities.
type HistogramState struct {
	Name   string
	Counts []uint64
	Sum    float64
	N      uint64
	Min    float64
	Max    float64
}

// RegistryState is a Registry's snapshot: every metric value in registration
// order, with names carried for shape verification on restore.
type RegistryState struct {
	CounterNames  []string
	CounterValues []float64
	GaugeNames    []string
	GaugeValues   []float64
	Hists         []HistogramState
}

// ExportState captures the registry for a snapshot.
func (r *Registry) ExportState() RegistryState {
	var st RegistryState
	for _, c := range r.counters {
		st.CounterNames = append(st.CounterNames, c.name)
		st.CounterValues = append(st.CounterValues, c.v)
	}
	for _, g := range r.gauges {
		st.GaugeNames = append(st.GaugeNames, g.name)
		st.GaugeValues = append(st.GaugeValues, g.v)
	}
	for _, h := range r.hists {
		hs := HistogramState{
			Name:   h.name,
			Counts: append([]uint64(nil), h.counts...),
			Sum:    h.sum,
			N:      h.n,
			Min:    h.min,
			Max:    h.max,
		}
		if h.n == 0 {
			// ±Inf sentinels; re-derived on restore.
			hs.Min, hs.Max = 0, 0
		}
		st.Hists = append(st.Hists, hs)
	}
	return st
}

// RestoreState overlays a snapshot onto a registry whose metrics were
// re-registered in the same order with the same names and bounds.
func (r *Registry) RestoreState(st RegistryState) error {
	if len(st.CounterNames) != len(r.counters) || len(st.GaugeNames) != len(r.gauges) || len(st.Hists) != len(r.hists) {
		return fmt.Errorf("telemetry: snapshot shape %d/%d/%d metrics, registry has %d/%d/%d",
			len(st.CounterNames), len(st.GaugeNames), len(st.Hists),
			len(r.counters), len(r.gauges), len(r.hists))
	}
	for i, c := range r.counters {
		if st.CounterNames[i] != c.name {
			return fmt.Errorf("telemetry: snapshot counter %d is %q, registry has %q", i, st.CounterNames[i], c.name)
		}
	}
	for i, g := range r.gauges {
		if st.GaugeNames[i] != g.name {
			return fmt.Errorf("telemetry: snapshot gauge %d is %q, registry has %q", i, st.GaugeNames[i], g.name)
		}
	}
	for i, h := range r.hists {
		hs := st.Hists[i]
		if hs.Name != h.name {
			return fmt.Errorf("telemetry: snapshot histogram %d is %q, registry has %q", i, hs.Name, h.name)
		}
		if len(hs.Counts) != len(h.counts) {
			return fmt.Errorf("telemetry: snapshot histogram %q has %d buckets, registry has %d", h.name, len(hs.Counts), len(h.counts))
		}
	}
	for i, c := range r.counters {
		c.v = st.CounterValues[i]
	}
	for i, g := range r.gauges {
		g.v = st.GaugeValues[i]
	}
	for i, h := range r.hists {
		hs := st.Hists[i]
		copy(h.counts, hs.Counts)
		h.sum = hs.Sum
		h.n = hs.N
		if hs.N == 0 {
			h.min, h.max = math.Inf(1), math.Inf(-1)
		} else {
			h.min, h.max = hs.Min, hs.Max
		}
	}
	return nil
}

// SamplerState is a Sampler's snapshot: the next due time and the rows
// emitted so far.
type SamplerState struct {
	Next    float64
	Samples []Sample
}

// ExportState captures the sampler for a snapshot. Sample rows are deep
// copied so later ticks in the original run do not alias the snapshot.
func (s *Sampler) ExportState() SamplerState {
	st := SamplerState{Next: s.next}
	for _, row := range s.series.Samples {
		st.Samples = append(st.Samples, Sample{
			Time:   row.Time,
			Values: append([]float64(nil), row.Values...),
		})
	}
	return st
}

// RestoreState overlays a snapshot onto a freshly built sampler with the same
// interval and registry layout.
func (s *Sampler) RestoreState(st SamplerState) {
	s.next = st.Next
	s.series.Samples = s.series.Samples[:0]
	for _, row := range st.Samples {
		s.series.Samples = append(s.series.Samples, Sample{
			Time:   row.Time,
			Values: append([]float64(nil), row.Values...),
		})
	}
}
