package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// SSE framing for live event streams.
//
// Each trace event becomes one Server-Sent-Events message whose id field
// carries the event's zero-based stream offset and whose data field is the
// canonical JSONL line (AppendJSON), so the live wire encoding is
// byte-identical to the at-rest trace file modulo framing:
//
//	id: 41
//	data: {"t":12.500000,"node":3,"ev":"tx","msg":7,"n":2}
//
// Heartbeats are comment lines (": hb\n\n") emitted while the stream is
// idle so proxies and clients can distinguish "quiet" from "dead". The
// stream ends with an explicit terminator message:
//
//	event: done
//	data: {"state":"done","events":123,"dropped":0}
//
// A client that reconnects passes the next offset it expects (its last id
// + 1) via ?offset= or the standard Last-Event-ID header, and the server
// replays from exactly there: no gaps, no duplicates.

// SSEDoneEvent is the event name of the stream terminator message.
const SSEDoneEvent = "done"

// AppendSSE appends one SSE-framed event message to dst: the id line
// carrying offset, the data line carrying the canonical JSON encoding of
// ev, and the blank separator line.
func AppendSSE(dst []byte, offset uint64, ev Event) []byte {
	dst = append(dst, "id: "...)
	dst = strconv.AppendUint(dst, offset, 10)
	dst = append(dst, "\ndata: "...)
	dst = AppendJSON(dst, ev)
	return append(dst, '\n', '\n')
}

// AppendSSEHeartbeat appends an SSE comment heartbeat.
func AppendSSEHeartbeat(dst []byte) []byte {
	return append(dst, ':', ' ', 'h', 'b', '\n', '\n')
}

// AppendSSEDone appends the stream terminator message. state is the job's
// terminal state; events is the total stream length; dropped counts events
// lost by push consumers (0 for pull readers, which never drop).
func AppendSSEDone(dst []byte, state string, events, dropped uint64) []byte {
	dst = append(dst, "event: "...)
	dst = append(dst, SSEDoneEvent...)
	dst = append(dst, "\ndata: {\"state\":"...)
	dst = strconv.AppendQuote(dst, state)
	dst = append(dst, ",\"events\":"...)
	dst = strconv.AppendUint(dst, events, 10)
	dst = append(dst, ",\"dropped\":"...)
	dst = strconv.AppendUint(dst, dropped, 10)
	return append(dst, '}', '\n', '\n')
}

// SSEMessage is one decoded Server-Sent-Events message.
type SSEMessage struct {
	HasID bool
	ID    uint64 // stream offset from the id field (when HasID)
	Event string // event field; empty for ordinary event messages
	Data  []byte // raw data payload (JSONL event line for ordinary messages)
}

// SSEReader incrementally decodes an SSE stream as produced by AppendSSE /
// the dftserve /stream endpoint. It tolerates comment lines (heartbeats),
// unknown fields, and multi-line data (joined with \n) per the SSE spec.
type SSEReader struct {
	sc     *bufio.Scanner
	lastID uint64
	anyID  bool
}

// NewSSEReader wraps r. Lines longer than 4 MiB are an error.
func NewSSEReader(r io.Reader) *SSEReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &SSEReader{sc: sc}
}

// LastID returns the most recent id field observed and whether any was.
// After a disconnect, resume from LastID()+1.
func (r *SSEReader) LastID() (uint64, bool) { return r.lastID, r.anyID }

// Next returns the next complete message. It returns io.EOF at a clean end
// of input; a message cut off mid-frame (no blank line yet) is returned as
// a final message before io.EOF, matching how a tail client should treat a
// dropped connection.
func (r *SSEReader) Next() (SSEMessage, error) {
	var msg SSEMessage
	var data [][]byte
	seen := false
	for r.sc.Scan() {
		line := r.sc.Bytes()
		if len(line) == 0 {
			if !seen {
				continue // leading blank lines between messages
			}
			return r.finish(msg, data), nil
		}
		if line[0] == ':' {
			continue // comment / heartbeat
		}
		seen = true
		field, value := splitSSEField(line)
		switch field {
		case "id":
			if id, err := strconv.ParseUint(value, 10, 64); err == nil {
				msg.HasID = true
				msg.ID = id
			}
		case "event":
			msg.Event = value
		case "data":
			data = append(data, append([]byte(nil), value...))
		}
	}
	if err := r.sc.Err(); err != nil {
		return SSEMessage{}, err
	}
	if seen {
		return r.finish(msg, data), nil
	}
	return SSEMessage{}, io.EOF
}

// finish assembles the data lines and records the message id.
func (r *SSEReader) finish(msg SSEMessage, data [][]byte) SSEMessage {
	msg.Data = bytes.Join(data, []byte{'\n'})
	if msg.HasID {
		r.lastID = msg.ID
		r.anyID = true
	}
	return msg
}

// splitSSEField splits "field: value" per the SSE spec (one optional space
// after the colon is eaten; a line without a colon is a field with an
// empty value).
func splitSSEField(line []byte) (field, value string) {
	i := bytes.IndexByte(line, ':')
	if i < 0 {
		return string(line), ""
	}
	v := line[i+1:]
	if len(v) > 0 && v[0] == ' ' {
		v = v[1:]
	}
	return string(line[:i]), string(v)
}

// DecodeSSE reads an entire SSE stream, returning the decoded trace events
// in order, the terminator's data payload (nil if the stream ended without
// one), and the first error. Events with ids are validated to be
// contiguous from the first id seen — a gap or duplicate is an error,
// which is exactly the property the resumable /stream endpoint guarantees.
func DecodeSSE(r io.Reader) (evs []Event, done []byte, err error) {
	sr := NewSSEReader(r)
	var next uint64
	haveNext := false
	for {
		msg, err := sr.Next()
		if err == io.EOF {
			return evs, done, nil
		}
		if err != nil {
			return evs, done, err
		}
		if msg.Event == SSEDoneEvent {
			done = msg.Data
			continue
		}
		if len(msg.Data) == 0 {
			continue
		}
		ev, perr := ParseJSONEvent(msg.Data)
		if perr != nil {
			return evs, done, fmt.Errorf("telemetry: sse data: %w", perr)
		}
		if msg.HasID {
			if haveNext && msg.ID != next {
				return evs, done, fmt.Errorf("telemetry: sse stream gap: id %d, want %d", msg.ID, next)
			}
			next = msg.ID + 1
			haveNext = true
		}
		evs = append(evs, ev)
	}
}
