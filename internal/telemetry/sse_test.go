package telemetry

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func sseSample() []Event {
	return []Event{
		{Time: 0.25, Node: 1, Type: EvGen, Msg: 1},
		{Time: 1.5, Node: 2, Type: EvRx, Msg: 1, Peer: 1, FTD: 0.75, Kept: true},
		{Time: 2, Node: 0, Type: EvTx, Msg: 1, Count: 3},
		{Time: 3.125, Node: 4, Type: EvSleep, Value: 9.5},
		{Time: 4, Node: 2, Type: EvDeliver, Msg: 1, Value: 3.75, Count: 2},
	}
}

// TestSSERoundTrip encodes a stream with framing, heartbeats, and a
// terminator, and decodes it back to the identical events.
func TestSSERoundTrip(t *testing.T) {
	evs := sseSample()
	var wire []byte
	wire = AppendSSEHeartbeat(wire)
	for i, ev := range evs {
		wire = AppendSSE(wire, uint64(i), ev)
		if i == 2 {
			wire = AppendSSEHeartbeat(wire)
		}
	}
	wire = AppendSSEDone(wire, "done", uint64(len(evs)), 0)

	got, done, err := DecodeSSE(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", got, evs)
	}
	if want := `{"state":"done","events":5,"dropped":0}`; string(done) != want {
		t.Fatalf("done payload %q, want %q", done, want)
	}
}

// TestSSEReaderResume checks the reconnect bookkeeping: LastID tracks the
// id field so a client resumes from LastID()+1, and DecodeSSE rejects a
// stream with a gap or duplicate.
func TestSSEReaderResume(t *testing.T) {
	evs := sseSample()
	var wire []byte
	for i, ev := range evs[:3] {
		wire = AppendSSE(wire, uint64(i), ev)
	}
	r := NewSSEReader(bytes.NewReader(wire))
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if id, ok := r.LastID(); !ok || id != 2 {
		t.Fatalf("LastID = %d,%v; want 2,true", id, ok)
	}

	// A gap (offset 4 after 0..2) is detected.
	bad := append([]byte(nil), wire...)
	bad = AppendSSE(bad, 4, evs[4])
	if _, _, err := DecodeSSE(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap not detected: %v", err)
	}
	// A duplicate (offset 2 again) is detected.
	dup := append([]byte(nil), wire...)
	dup = AppendSSE(dup, 2, evs[2])
	if _, _, err := DecodeSSE(bytes.NewReader(dup)); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("duplicate not detected: %v", err)
	}
}

// TestSSEDataMatchesJSONL pins that the SSE data payload is byte-identical
// to the JSONL line encoding — live and at-rest traces share one format.
func TestSSEDataMatchesJSONL(t *testing.T) {
	for _, ev := range sseSample() {
		frame := AppendSSE(nil, 7, ev)
		r := NewSSEReader(bytes.NewReader(frame))
		msg, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if want := AppendJSON(nil, ev); !bytes.Equal(msg.Data, want) {
			t.Fatalf("sse data %q != jsonl line %q", msg.Data, want)
		}
	}
}

// TestSSEReaderTolerance checks spec-mandated leniency: unknown fields,
// comments, retry lines, and missing trailing blank lines don't break the
// decoder.
func TestSSEReaderTolerance(t *testing.T) {
	wire := ": preamble comment\n" +
		"retry: 1000\n" +
		"unknown_field: x\n" +
		"id: 0\n" +
		"data: {\"t\":1.000000,\"node\":1,\"ev\":\"gen\",\"msg\":1}\n" +
		"\n" +
		"id: 1\n" +
		"data: {\"t\":2.000000,\"node\":1,\"ev\":\"wake\"}\n" // cut off: no blank line
	evs, _, err := DecodeSSE(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Type != EvGen || evs[1].Type != EvWake {
		t.Fatalf("decoded %+v", evs)
	}
}

// FuzzSSEDecode drives the SSE/offset-resume decoder with arbitrary bytes:
// it must never panic or loop, and any stream the encoder produced must
// round-trip exactly (seeded below and grown by mutation).
func FuzzSSEDecode(f *testing.F) {
	var seed []byte
	for i, ev := range sseSample() {
		seed = AppendSSE(seed, uint64(i), ev)
	}
	seed = AppendSSEDone(seed, "done", 5, 0)
	f.Add(seed)
	f.Add([]byte(": hb\n\nid: not-a-number\ndata: {\n\n"))
	f.Add([]byte("id: 18446744073709551615\ndata: {\"t\":0,\"node\":0,\"ev\":\"gen\"}\n\n"))
	f.Add([]byte("data\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, _, err := DecodeSSE(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must survive re-encoding and decode with no
		// framing loss (ids reassigned contiguously, as the server always
		// frames them). Float fields are excluded — Time is encoded at
		// fixed 6-decimal precision, so adversarial inputs are lossy by
		// design — but every framing-relevant field must round-trip.
		var wire []byte
		for i, ev := range evs {
			wire = AppendSSE(wire, uint64(i), ev)
		}
		evs2, _, err := DecodeSSE(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if len(evs2) != len(evs) {
			t.Fatalf("round trip lost events: %d vs %d", len(evs), len(evs2))
		}
		for i := range evs {
			a, b := evs[i], evs2[i]
			same := a.Type == b.Type && a.Node == b.Node && a.Msg == b.Msg &&
				a.Count == b.Count && a.Aux == b.Aux && a.Kept == b.Kept
			if same && a.Type.hasPeer() {
				same = a.Peer == b.Peer
			}
			if !same {
				t.Fatalf("event %d diverged: %+v vs %+v", i, a, b)
			}
		}
	})
}
