package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// StreamTee is a Recorder that makes a running simulation's event stream
// tailable without perturbing the run. It keeps an in-memory log that
// pull-side readers page through by offset (ReadAt/WaitAt — the service's
// /stream endpoint replays any suffix from any offset, so reconnects see
// no gaps and no duplicates), and fans events out to push-side consumers
// attached with Attach, each behind a bounded queue drained by its own
// goroutine.
//
// Record never blocks and never returns an error: a slow consumer's queue
// overflowing drops events for that consumer (counted, never silently),
// and a consumer whose Flush fails is detached. The simulation goroutine
// only ever takes a short mutex and non-blocking channel sends, so the
// virtual-time execution — and therefore the Results and telemetry bytes —
// are bit-identical to an unobserved run.
type StreamTee struct {
	mu        sync.Mutex
	events    []Event
	closed    bool
	max       uint64 // retained-event cap; 0 = unbounded
	truncated uint64 // events discarded by the cap (log readers see a truncated stream)
	waitCh    chan struct{}
	consumers []*StreamConsumer
	dropped   atomic.Uint64 // aggregate consumer-side drops
}

var _ Recorder = (*StreamTee)(nil)

// NewStreamTee returns an open tee. maxEvents caps the retained log to
// guard against runaway traces (appends beyond it are counted in
// Truncated, not stored); zero means unbounded.
func NewStreamTee(maxEvents uint64) *StreamTee {
	return &StreamTee{max: maxEvents}
}

// Record implements Recorder: append to the log and fan out to consumers,
// never blocking.
func (t *StreamTee) Record(ev Event) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if t.max > 0 && uint64(len(t.events)) >= t.max {
		t.truncated++
	} else {
		t.events = append(t.events, ev)
		if t.waitCh != nil {
			close(t.waitCh)
			t.waitCh = nil
		}
	}
	consumers := t.consumers
	t.mu.Unlock()
	for _, c := range consumers {
		c.offer(ev)
	}
}

// Close marks the end of the stream: readers blocked in WaitAt wake and
// observe done; consumers are flushed and detached. Close is idempotent.
// Recording after Close is a no-op.
func (t *StreamTee) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	if t.waitCh != nil {
		close(t.waitCh)
		t.waitCh = nil
	}
	consumers := t.consumers
	t.consumers = nil
	t.mu.Unlock()
	for _, c := range consumers {
		c.stop()
	}
}

// Reset truncates the log back to zero events and reopens the stream, used
// when a failed job attempt is retried: the simulation is deterministic, so
// the retry re-records the identical event sequence and a reader holding
// offset N simply waits until the replay passes N again, then continues
// seamlessly.
func (t *StreamTee) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = t.events[:0]
	t.truncated = 0
	t.closed = false
}

// Len returns the number of events currently retained in the log.
func (t *StreamTee) Len() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return uint64(len(t.events))
}

// Closed reports whether the stream has ended.
func (t *StreamTee) Closed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Truncated returns the number of events the retained-log cap discarded.
func (t *StreamTee) Truncated() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.truncated
}

// Dropped returns the aggregate number of events dropped across all
// consumers (slow queues plus events discarded at detach).
func (t *StreamTee) Dropped() uint64 { return t.dropped.Load() }

// ReadAt copies up to limit events starting at offset (limit <= 0 means
// all available). next is the offset one past the last returned event —
// pass it back to resume with no gaps and no duplicates. done reports that
// the stream is closed and offset is at or past the end.
func (t *StreamTee) ReadAt(offset uint64, limit int) (evs []Event, next uint64, done bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.events))
	if offset >= n {
		return nil, offset, t.closed
	}
	end := n
	if limit > 0 && offset+uint64(limit) < end {
		end = offset + uint64(limit)
	}
	evs = make([]Event, end-offset)
	copy(evs, t.events[offset:end])
	return evs, end, t.closed && end == n
}

// WaitAt blocks until the log holds events at or past offset, the stream
// closes, stop closes, or timeout elapses. It reports whether the caller
// should read immediately (new data or closure); false means the timeout
// or stop fired first — the /stream handler uses that to emit a heartbeat.
func (t *StreamTee) WaitAt(offset uint64, stop <-chan struct{}, timeout time.Duration) bool {
	t.mu.Lock()
	if uint64(len(t.events)) > offset || t.closed {
		t.mu.Unlock()
		return true
	}
	if t.waitCh == nil {
		t.waitCh = make(chan struct{})
	}
	ch := t.waitCh
	t.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-stop:
		return false
	case <-timer.C:
		return false
	}
}

// consumerFlushStride is how many forwarded events pass between Flush
// calls on a FileWriter-backed consumer. Flushing is what surfaces a
// broken downstream (e.g. a disconnected socket), which detaches the
// consumer instead of failing the job.
const consumerFlushStride = 256

// StreamConsumer is one push-side subscriber: a bounded queue drained by a
// dedicated goroutine into the wrapped Recorder, so a slow or broken
// consumer can never stall the simulation.
type StreamConsumer struct {
	tee      *StreamTee
	rec      Recorder
	fw       FileWriter // non-nil when rec flushes (drives the detach-on-error policy)
	ch       chan Event
	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	dropped  atomic.Uint64
	broken   atomic.Bool
}

// Attach subscribes rec to every subsequent event, behind a bounded queue
// of the given depth (<= 0 selects a default of 1024). If rec is a
// FileWriter, it is flushed periodically and on detach; a Flush error
// marks the consumer broken and detaches it — the run is never failed by
// its observers. Call Detach (or Close the tee) to unsubscribe.
func (t *StreamTee) Attach(rec Recorder, queue int) *StreamConsumer {
	if queue <= 0 {
		queue = 1024
	}
	c := &StreamConsumer{
		tee:  t,
		rec:  rec,
		ch:   make(chan Event, queue),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	if fw, ok := rec.(FileWriter); ok {
		c.fw = fw
	}
	go c.drain()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.stop()
		return c
	}
	t.consumers = append(t.consumers, c)
	t.mu.Unlock()
	return c
}

// offer enqueues ev without blocking; a full queue or a broken consumer
// drops the event (counted).
func (c *StreamConsumer) offer(ev Event) {
	if c.broken.Load() {
		c.dropped.Add(1)
		c.tee.dropped.Add(1)
		return
	}
	select {
	case c.ch <- ev:
	default:
		c.dropped.Add(1)
		c.tee.dropped.Add(1)
	}
}

// drain forwards queued events to the recorder on the consumer's own
// goroutine, flushing FileWriters on a stride and detaching on the first
// Flush error.
func (c *StreamConsumer) drain() {
	defer close(c.done)
	sinceFlush := 0
	flush := func() bool {
		if c.fw == nil {
			return true
		}
		sinceFlush = 0
		if err := c.fw.Flush(); err != nil {
			c.markBroken()
			return false
		}
		return true
	}
	for {
		select {
		case ev := <-c.ch:
			c.rec.Record(ev)
			if sinceFlush++; sinceFlush >= consumerFlushStride {
				if !flush() {
					return
				}
			}
		case <-c.quit:
			// Drain whatever is already queued, then a final flush.
			for {
				select {
				case ev := <-c.ch:
					c.rec.Record(ev)
				default:
					flush()
					return
				}
			}
		}
	}
}

// markBroken flags the consumer so offer stops queueing, counts the
// backlog as dropped, and removes it from the tee's fan-out list.
func (c *StreamConsumer) markBroken() {
	if c.broken.Swap(true) {
		return
	}
	if n := uint64(len(c.ch)); n > 0 {
		c.dropped.Add(n)
		c.tee.dropped.Add(n)
	}
	c.tee.remove(c)
}

// Detach unsubscribes the consumer, waits for its queue to drain into the
// recorder, and flushes it. Detaching twice (or after Close) is safe.
func (c *StreamConsumer) Detach() {
	c.tee.remove(c)
	c.stop()
}

// stop ends the drain goroutine and waits for it.
func (c *StreamConsumer) stop() {
	c.stopOnce.Do(func() { close(c.quit) })
	<-c.done
}

// Dropped returns the number of events this consumer lost to queue
// overflow or a broken downstream.
func (c *StreamConsumer) Dropped() uint64 { return c.dropped.Load() }

// Broken reports whether the consumer was detached by a Flush error.
func (c *StreamConsumer) Broken() bool { return c.broken.Load() }

// remove deletes c from the fan-out list. Copy-on-write: Record iterates a
// snapshot of the slice outside the lock, so the backing array must never
// be mutated in place.
func (t *StreamTee) remove(c *StreamConsumer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, other := range t.consumers {
		if other == c {
			next := make([]*StreamConsumer, 0, len(t.consumers)-1)
			next = append(next, t.consumers[:i]...)
			next = append(next, t.consumers[i+1:]...)
			t.consumers = next
			return
		}
	}
}
