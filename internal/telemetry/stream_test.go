package telemetry

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func streamEvents(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{Time: float64(i) / 4, Node: 1, Type: EvGen, Msg: messageID(uint64(i + 1))}
	}
	return out
}

// TestStreamTeeReadAtResume pins the no-gaps/no-duplicates contract: paging
// through the log with ReadAt from any offset — including re-reading from 0
// after a simulated disconnect — reconstructs the exact event sequence.
func TestStreamTeeReadAtResume(t *testing.T) {
	tee := NewStreamTee(0)
	evs := streamEvents(100)
	for _, ev := range evs {
		tee.Record(ev)
	}
	tee.Close()

	// Page through with a small limit.
	var got []Event
	off := uint64(0)
	for {
		page, next, done := tee.ReadAt(off, 7)
		if next < off || next-off != uint64(len(page)) {
			t.Fatalf("ReadAt(%d): next %d for %d events", off, next, len(page))
		}
		got = append(got, page...)
		off = next
		if done {
			break
		}
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("paged read differs from recorded events")
	}

	// Replay from 0 (reconnect) is identical; resume mid-stream has no
	// duplicates.
	replay, _, done := tee.ReadAt(0, 0)
	if !done || !reflect.DeepEqual(replay, evs) {
		t.Fatalf("replay from 0 differs (done=%v)", done)
	}
	tail, next, done := tee.ReadAt(42, 0)
	if !done || next != 100 || !reflect.DeepEqual(tail, evs[42:]) {
		t.Fatalf("resume from 42 differs (next=%d done=%v)", next, done)
	}

	// Reading past the end of a closed stream reports done immediately.
	if evs, _, done := tee.ReadAt(1000, 0); len(evs) != 0 || !done {
		t.Fatalf("read past end: %d events, done=%v", len(evs), done)
	}
}

// TestStreamTeeWaitAt checks the blocking read path used by the SSE
// handler: WaitAt wakes on new data, on Close, and times out while idle.
func TestStreamTeeWaitAt(t *testing.T) {
	tee := NewStreamTee(0)
	if tee.WaitAt(0, nil, 10*time.Millisecond) {
		t.Fatal("WaitAt on an idle stream must time out")
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		tee.Record(Event{Type: EvGen, Msg: 1})
	}()
	if !tee.WaitAt(0, nil, time.Second) {
		t.Fatal("WaitAt must wake on a new event")
	}
	// Data already present: no blocking.
	if !tee.WaitAt(0, nil, 0) {
		t.Fatal("WaitAt with data available must return immediately")
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		tee.Close()
	}()
	if !tee.WaitAt(1, nil, time.Second) {
		t.Fatal("WaitAt must wake on Close")
	}
	stop := make(chan struct{})
	close(stop)
	tee2 := NewStreamTee(0)
	if tee2.WaitAt(0, stop, time.Second) {
		t.Fatal("WaitAt must honour stop")
	}
}

// TestStreamTeeCap checks the retained-log guard: appends beyond the cap
// are counted, not stored, and the tee stays consistent.
func TestStreamTeeCap(t *testing.T) {
	tee := NewStreamTee(10)
	for _, ev := range streamEvents(25) {
		tee.Record(ev)
	}
	if tee.Len() != 10 || tee.Truncated() != 15 {
		t.Fatalf("len=%d truncated=%d, want 10/15", tee.Len(), tee.Truncated())
	}
}

// blockingRecorder blocks every Record until released — a worst-case slow
// consumer.
type blockingRecorder struct {
	release chan struct{}
	got     []Event
}

func (b *blockingRecorder) Record(ev Event) {
	<-b.release
	b.got = append(b.got, ev)
}

// TestStreamConsumerDropPolicy pins the slow-consumer policy: a consumer
// whose bounded queue is full loses events (counted on the consumer and
// the tee), and Record never blocks the simulation goroutine.
func TestStreamConsumerDropPolicy(t *testing.T) {
	tee := NewStreamTee(0)
	br := &blockingRecorder{release: make(chan struct{})}
	c := tee.Attach(br, 4)

	recorded := make(chan struct{})
	go func() {
		for _, ev := range streamEvents(100) {
			tee.Record(ev)
		}
		close(recorded)
	}()
	select {
	case <-recorded:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked behind a slow consumer")
	}
	close(br.release)
	c.Detach()
	if c.Dropped() == 0 || tee.Dropped() != c.Dropped() {
		t.Fatalf("dropped: consumer %d, tee %d; want equal and nonzero", c.Dropped(), tee.Dropped())
	}
	if got, dropped := uint64(len(br.got)), c.Dropped(); got+dropped < 100 {
		t.Fatalf("delivered %d + dropped %d < 100 recorded", got, dropped)
	}
	// The log itself never drops.
	if tee.Len() != 100 {
		t.Fatalf("log retained %d events, want 100", tee.Len())
	}
}

// failingWriter is a FileWriter whose Flush starts failing on demand — a
// stand-in for a stream consumer whose socket died.
type failingWriter struct {
	mu   sync.Mutex
	n    uint64
	fail bool
}

func (f *failingWriter) Record(Event) {
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
}
func (f *failingWriter) Events() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}
func (f *failingWriter) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errors.New("broken pipe")
	}
	return nil
}

// TestStreamConsumerFlushErrorDetaches pins the broken-consumer policy: a
// FileWriter consumer whose Flush fails is detached from the tee — the run
// keeps recording unperturbed — and subsequent events count as dropped.
func TestStreamConsumerFlushErrorDetaches(t *testing.T) {
	tee := NewStreamTee(0)
	fw := &failingWriter{fail: true}
	c := tee.Attach(fw, 16)

	// Enough events to cross the flush stride and trip the error.
	for _, ev := range streamEvents(2 * consumerFlushStride) {
		tee.Record(ev)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !c.Broken() {
		if time.Now().After(deadline) {
			t.Fatal("consumer never detached on Flush error")
		}
		tee.Record(Event{Type: EvGen, Msg: 999})
		time.Sleep(time.Millisecond)
	}
	before := tee.Len()
	tee.Record(Event{Type: EvGen, Msg: 1000})
	if tee.Len() != before+1 {
		t.Fatal("tee stopped recording after consumer broke")
	}
	if c.Dropped() == 0 {
		t.Fatal("broken consumer's lost events not counted")
	}
	tee.Close()
}

// TestStreamTeeReset checks the retry path: Reset truncates and reopens the
// log so a deterministic re-run rebuilds the identical stream.
func TestStreamTeeReset(t *testing.T) {
	tee := NewStreamTee(0)
	evs := streamEvents(10)
	for _, ev := range evs[:7] {
		tee.Record(ev)
	}
	tee.Reset()
	if tee.Len() != 0 || tee.Closed() {
		t.Fatalf("after Reset: len=%d closed=%v", tee.Len(), tee.Closed())
	}
	for _, ev := range evs {
		tee.Record(ev)
	}
	tee.Close()
	got, _, done := tee.ReadAt(0, 0)
	if !done || !reflect.DeepEqual(got, evs) {
		t.Fatal("post-Reset stream differs from the re-recorded sequence")
	}
}

// TestStreamTeeAttachAfterClose checks that attaching to a finished stream
// yields an immediately-stopped consumer instead of a leak.
func TestStreamTeeAttachAfterClose(t *testing.T) {
	tee := NewStreamTee(0)
	tee.Close()
	c := tee.Attach(&Buffer{}, 4)
	c.Detach() // must not hang
}
