package telemetry

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"dftmsn/internal/trace"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 0.5, Node: 4, Type: EvGen, Msg: 1},
		{Time: 0.6, Node: 5, Type: EvGenDrop, Msg: 2},
		{Time: 1.25, Node: 4, Type: EvCTS, Peer: 9, Value: 0.75},
		{Time: 1.5, Node: 4, Type: EvTx, Msg: 1, Count: 2},
		{Time: 1.75, Node: 0, Type: EvRx, Msg: 1, Peer: 4, FTD: 0.5, Kept: true},
		{Time: 1.75, Node: 9, Type: EvRx, Msg: 1, Peer: 4, FTD: 0.25, Kept: false},
		{Time: 1.8, Node: 0, Type: EvAck, Msg: 1, Peer: 4},
		{Time: 1.9, Node: 4, Type: EvFTDUpdate, Msg: 1, Value: 0.5, FTD: 0.875, Kept: true},
		{Time: 2.0, Node: 4, Type: EvTxOutcome, Msg: 1, Count: 2, Aux: 1},
		{Time: 2.5, Node: 0, Type: EvDeliver, Msg: 1, Value: 2.0, Count: 1},
		{Time: 3.0, Node: 4, Type: EvDrop, Msg: 1, FTD: 0.97, Aux: DropThreshold},
		{Time: 4.0, Node: 7, Type: EvSleep, Value: 12.5},
		{Time: 16.5, Node: 7, Type: EvWake},
		{Time: 20.0, Node: 8, Type: EvCrash, Count: 3},
		{Time: 25.0, Node: 8, Type: EvReboot},
		{Time: 30.0, Node: 6, Type: EvKill},
		{Time: 40.0, Node: 3, Type: EvDied, Value: 100.0},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	w := NewJSONL(&buf, 0)
	for _, ev := range events {
		w.Record(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := w.Events(); got != uint64(len(events)) {
		t.Fatalf("Events() = %d, want %d", got, len(events))
	}
	if !strings.HasPrefix(buf.String(), `{"schema":2,"format":"dftmsn-trace"}`) {
		t.Fatalf("missing header, got %q", buf.String()[:40])
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	w := NewBinary(&buf, 0)
	for _, ev := range events {
		w.Record(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if want := binaryHeaderSize + len(events)*binaryRecordSize; buf.Len() != want {
		t.Fatalf("binary size %d, want %d", buf.Len(), want)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestDetectFormat(t *testing.T) {
	var jb, bb bytes.Buffer
	jw := NewJSONL(&jb, 0)
	jw.Record(Event{Type: EvGen, Msg: 1})
	jw.Flush()
	bw := NewBinary(&bb, 0)
	bw.Record(Event{Type: EvGen, Msg: 1})
	bw.Flush()

	if f, err := DetectFormat(bufio.NewReader(&jb)); err != nil || f != FormatJSONL {
		t.Errorf("jsonl detect = %v, %v", f, err)
	}
	if f, err := DetectFormat(bufio.NewReader(&bb)); err != nil || f != FormatBinary {
		t.Errorf("binary detect = %v, %v", f, err)
	}
	if _, err := DetectFormat(bufio.NewReader(strings.NewReader("0.5\t3\tgen\tmsg=1\n"))); err == nil {
		t.Error("legacy TSV detected as trace v2")
	}
}

func TestReaderRejectsNewerSchema(t *testing.T) {
	in := `{"schema":99,"format":"dftmsn-trace"}` + "\n"
	if _, err := ReadAll(strings.NewReader(in)); err == nil {
		t.Fatal("want error for newer schema")
	}
}

func TestWriterCapsEvents(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONL(&buf, 3)
	for i := 0; i < 10; i++ {
		w.Record(Event{Time: float64(i), Type: EvGen, Msg: 1})
	}
	w.Flush()
	if got := w.Events(); got != 3 {
		t.Fatalf("Events() = %d, want 3", got)
	}
	events, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("read %d events, want 3", len(events))
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ budget int }

var errSink = errors.New("disk full")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errSink
	}
	f.budget -= len(p)
	return len(p), nil
}

func TestWriterFlushSurfacesWriteError(t *testing.T) {
	for name, mk := range map[string]func(*failWriter) FileWriter{
		"jsonl":  func(fw *failWriter) FileWriter { return NewJSONL(fw, 0) },
		"binary": func(fw *failWriter) FileWriter { return NewBinary(fw, 0) },
	} {
		w := mk(&failWriter{budget: 8})
		for i := 0; i < 4096; i++ { // enough to overflow bufio's buffer
			w.Record(Event{Time: float64(i), Type: EvGen, Msg: 1})
		}
		if err := w.Flush(); !errors.Is(err, errSink) {
			t.Errorf("%s: Flush = %v, want %v", name, err, errSink)
		}
	}
}

func TestParseEventTypeRoundTrip(t *testing.T) {
	for _, typ := range EventTypes() {
		got, ok := ParseEventType(typ.String())
		if !ok || got != typ {
			t.Errorf("ParseEventType(%q) = %v, %v", typ.String(), got, ok)
		}
	}
	if _, ok := ParseEventType("bogus"); ok {
		t.Error("ParseEventType accepted bogus name")
	}
	if _, ok := ParseEventType("none"); ok {
		t.Error("ParseEventType accepted the zero value name")
	}
}

func TestCombine(t *testing.T) {
	if _, ok := Combine().(Nop); !ok {
		t.Error("Combine() should be Nop")
	}
	b := &Buffer{}
	if got := Combine(nil, b, nil); got != Recorder(b) {
		t.Errorf("Combine with one non-nil should unwrap, got %T", got)
	}
	b2 := &Buffer{}
	m := Combine(b, b2)
	m.Record(Event{Type: EvGen, Msg: 7})
	if len(b.Events) != 1 || len(b2.Events) != 1 {
		t.Errorf("Multi fan-out: got %d, %d events", len(b.Events), len(b2.Events))
	}
}

// TestLegacyAdapterByteCompatible locks the adapter to the historical TSV
// lines byte for byte.
func TestLegacyAdapterByteCompatible(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, 0)
	a := NewLegacyAdapter(w)
	for _, ev := range sampleEvents() {
		a.Record(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	want := strings.Join([]string{
		"0.500000\t4\tgen\tmsg=1",
		"0.600000\t5\tgen-drop\tmsg=2",
		"1.500000\t4\tschedule\tmsg=1 receivers=2",
		"1.750000\t0\trx-data\tmsg=1 from=4 ftd=0.500 kept=true",
		"1.750000\t9\trx-data\tmsg=1 from=4 ftd=0.250 kept=false",
		"2.000000\t4\ttx-outcome\tscheduled=2 acked=1",
		"4.000000\t7\tsleep\tdur=12.500",
		"16.500000\t7\twake\t",
		"20.000000\t8\tcrash\tlost=3",
		"25.000000\t8\trecover\t",
		"30.000000\t6\tkilled\t",
		"40.000000\t3\tdied\tjoules=100.000",
	}, "\n") + "\n"
	if buf.String() != want {
		t.Errorf("legacy lines:\n%s\nwant:\n%s", buf.String(), want)
	}
	if NewLegacyAdapter(nil) != nil {
		t.Error("NewLegacyAdapter(nil) should be nil")
	}
}

// TestNopZeroAlloc is the acceptance criterion: the telemetry-off path
// allocates nothing per event.
func TestNopZeroAlloc(t *testing.T) {
	var rec Recorder = Nop{}
	ev := Event{Time: 1.5, Node: 3, Type: EvRx, Msg: 42, Peer: 7, FTD: 0.5, Kept: true}
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Record(ev)
	})
	if allocs != 0 {
		t.Fatalf("Nop.Record allocates %v per event, want 0", allocs)
	}
}

func BenchmarkNopRecord(b *testing.B) {
	var rec Recorder = Nop{}
	ev := Event{Time: 1.5, Node: 3, Type: EvRx, Msg: 42, Peer: 7, FTD: 0.5, Kept: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(ev)
	}
}

func BenchmarkJSONLRecord(b *testing.B) {
	w := NewJSONL(io.Discard, 0)
	ev := Event{Time: 1.5, Node: 3, Type: EvRx, Msg: 42, Peer: 7, FTD: 0.5, Kept: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Record(ev)
	}
}

func BenchmarkBinaryRecord(b *testing.B) {
	w := NewBinary(io.Discard, 0)
	ev := Event{Time: 1.5, Node: 3, Type: EvRx, Msg: 42, Peer: 7, FTD: 0.5, Kept: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Record(ev)
	}
}

func TestQuantileNaNIgnored(t *testing.T) {
	h := newHistogram("x", LinearBuckets(1, 1, 4))
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("NaN counted: %d", h.Count())
	}
}
