package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dftmsn/internal/packet"
)

// Record is one parsed trace event.
type Record struct {
	Time   float64
	Node   packet.NodeID
	Event  string
	Detail string
}

// Parse reads the tab-separated format produced by Writer. Malformed lines
// produce an error naming the line number.
func Parse(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, "\t", 4)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d has %d fields, want 4", lineNo, len(fields))
		}
		ts, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d time: %w", lineNo, err)
		}
		node, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d node: %w", lineNo, err)
		}
		out = append(out, Record{
			Time:   ts,
			Node:   packet.NodeID(node),
			Event:  fields[2],
			Detail: fields[3],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// Summary aggregates a parsed trace.
type Summary struct {
	// Events counts records by event name.
	Events map[string]int
	// Nodes is the number of distinct nodes appearing.
	Nodes int
	// Span is [first, last] event time.
	Span [2]float64
	// Total is the record count.
	Total int
}

// Summarize aggregates records.
func Summarize(recs []Record) Summary {
	s := Summary{Events: make(map[string]int)}
	nodes := make(map[packet.NodeID]bool)
	for i, r := range recs {
		s.Events[r.Event]++
		nodes[r.Node] = true
		if i == 0 || r.Time < s.Span[0] {
			s.Span[0] = r.Time
		}
		if r.Time > s.Span[1] {
			s.Span[1] = r.Time
		}
	}
	s.Nodes = len(nodes)
	s.Total = len(recs)
	return s
}

// Format renders the summary as aligned text, events sorted by count.
func (s Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events from %d nodes over [%.3f, %.3f] s\n",
		s.Total, s.Nodes, s.Span[0], s.Span[1])
	type kv struct {
		name  string
		count int
	}
	rows := make([]kv, 0, len(s.Events))
	for name, count := range s.Events {
		rows = append(rows, kv{name, count})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-12s %d\n", row.name, row.count)
	}
	return b.String()
}
