package trace

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, 0)
	w.Emit(1.5, 3, "tx", "preamble")
	w.Emit(2.25, 4, "rx", "rts from=3")
	w.Emit(7.125, 3, "sleep", "dur=3.5")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records", len(recs))
	}
	if recs[0].Time != 1.5 || recs[0].Node != 3 || recs[0].Event != "tx" || recs[0].Detail != "preamble" {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[2].Event != "sleep" || recs[2].Detail != "dur=3.5" {
		t.Fatalf("record 2 = %+v", recs[2])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"notanumber\t1\tev\tdetail\n",
		"1.0\tnotanode\tev\tdetail\n",
		"1.0\t1\tonly-three-fields\n",
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("malformed line accepted: %q", c)
		}
	}
	// Empty lines are tolerated.
	recs, err := Parse(strings.NewReader("\n1\t2\tev\td\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed %d records, want 1", len(recs))
	}
	// Empty input yields an empty trace.
	recs, err = Parse(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty input: %v, %d records", err, len(recs))
	}
}

func TestParseDetailMayContainTabs(t *testing.T) {
	recs, err := Parse(strings.NewReader("1\t2\tev\tdetail\twith\ttabs\n"))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Detail != "detail\twith\ttabs" {
		t.Fatalf("detail = %q", recs[0].Detail)
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Time: 5, Node: 1, Event: "tx"},
		{Time: 2, Node: 2, Event: "rx"},
		{Time: 9, Node: 1, Event: "tx"},
	}
	s := Summarize(recs)
	if s.Total != 3 || s.Nodes != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.Events["tx"] != 2 || s.Events["rx"] != 1 {
		t.Fatalf("events %v", s.Events)
	}
	if s.Span != [2]float64{2, 9} {
		t.Fatalf("span %v", s.Span)
	}
	out := s.Format()
	if !strings.Contains(out, "3 events from 2 nodes") || !strings.Contains(out, "tx") {
		t.Fatalf("format:\n%s", out)
	}
	// tx (2) sorts before rx (1).
	if strings.Index(out, "tx") > strings.Index(out, "rx") {
		t.Fatalf("events not sorted by count:\n%s", out)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Total != 0 || s.Nodes != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	if out := s.Format(); !strings.Contains(out, "0 events") {
		t.Fatalf("format %q", out)
	}
}
