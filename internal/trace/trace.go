// Package trace provides a lightweight structured event trace for the
// simulator. Tracing is optional: the zero-cost Nop tracer is used by
// default, and a Writer tracer emits tab-separated records for debugging
// and the dfttrace tool.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"dftmsn/internal/packet"
)

// Tracer receives simulation events.
type Tracer interface {
	// Emit records one event: virtual time, the node concerned, a short
	// event name (e.g. "tx", "rx", "sleep", "drop"), and free-form detail.
	Emit(now float64, node packet.NodeID, event, detail string)
}

// Nop discards all events.
type Nop struct{}

var _ Tracer = Nop{}

// Emit implements Tracer by doing nothing.
func (Nop) Emit(float64, packet.NodeID, string, string) {}

// Writer emits one tab-separated line per event. It is safe for concurrent
// use so parallel sweep runs may share a destination for coarse debugging,
// though per-run writers give cleaner output.
type Writer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	n   uint64
	max uint64
	err error
}

var _ Tracer = (*Writer)(nil)

// NewWriter wraps w. maxEvents caps output to guard against runaway traces;
// zero means unlimited.
func NewWriter(w io.Writer, maxEvents uint64) *Writer {
	return &Writer{w: bufio.NewWriter(w), max: maxEvents}
}

// Emit implements Tracer.
func (t *Writer) Emit(now float64, node packet.NodeID, event, detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.max > 0 && t.n >= t.max {
		return
	}
	t.n++
	// The first write error is captured and surfaced by Flush; tracing must
	// not abort a run.
	if _, err := fmt.Fprintf(t.w, "%.6f\t%d\t%s\t%s\n", now, node, event, detail); err != nil && t.err == nil {
		t.err = err
	}
}

// Events returns the number of events written (after capping).
func (t *Writer) Events() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Flush drains buffered output to the underlying writer and returns the
// first error encountered by any write since construction.
func (t *Writer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); t.err == nil && err != nil {
		t.err = err
	}
	return t.err
}
