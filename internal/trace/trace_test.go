package trace

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNopDoesNothing(t *testing.T) {
	// Must simply not panic.
	Nop{}.Emit(1.5, 3, "tx", "data")
}

func TestWriterFormat(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, 0)
	w.Emit(1.5, 3, "tx", "preamble")
	w.Emit(2.25, 4, "rx", "rts from=3")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), sb.String())
	}
	fields := strings.Split(lines[0], "\t")
	if len(fields) != 4 || fields[1] != "3" || fields[2] != "tx" || fields[3] != "preamble" {
		t.Fatalf("line = %q", lines[0])
	}
	if !strings.HasPrefix(fields[0], "1.5") {
		t.Fatalf("time field = %q", fields[0])
	}
	if w.Events() != 2 {
		t.Fatalf("Events = %d", w.Events())
	}
}

func TestWriterCapsEvents(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, 3)
	for i := 0; i < 10; i++ {
		w.Emit(float64(i), 1, "e", "")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != 3 {
		t.Fatalf("wrote %d lines, want cap 3", n)
	}
	if w.Events() != 3 {
		t.Fatalf("Events = %d, want 3", w.Events())
	}
}

// failAfter accepts its first budget bytes, then fails every write.
type failAfter struct{ budget int }

var errDiskFull = errors.New("disk full")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errDiskFull
	}
	f.budget -= len(p)
	return len(p), nil
}

// TestWriterFlushSurfacesWriteError locks in that Emit's write errors are
// not lost: the first one is reported by Flush, even when later flushes
// succeed trivially.
func TestWriterFlushSurfacesWriteError(t *testing.T) {
	w := NewWriter(&failAfter{budget: 16}, 0)
	for i := 0; i < 4096; i++ { // enough to overflow bufio's buffer mid-run
		w.Emit(float64(i), 1, "e", "x")
	}
	if err := w.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Flush = %v, want %v", err, errDiskFull)
	}
	// The error is sticky: a second Flush still reports it.
	if err := w.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("second Flush = %v, want %v", err, errDiskFull)
	}
}

func TestWriterConcurrentSafety(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w.Emit(float64(i), 1, "e", "x")
			}
		}(g)
	}
	wg.Wait()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != 800 {
		t.Fatalf("wrote %d lines, want 800", n)
	}
}
