package trace

import (
	"fmt"
	"strings"

	"dftmsn/internal/packet"
)

// Violation is one protocol-invariant breach found in a trace.
type Violation struct {
	Record Record
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.6f node=%d %s: %s", v.Record.Time, v.Record.Node, v.Record.Event, v.Reason)
}

// Verify checks node-level protocol invariants over a parsed trace:
//
//  1. events are globally time-ordered (the writer emits in virtual-time
//     order);
//  2. sleep/wake alternate per node — no double sleep, no wake without a
//     preceding sleep;
//  3. a sleeping node neither receives data, multicasts, nor generates a
//     transmission outcome (radio is off);
//  4. "died"/"killed" is terminal — no further events from that node;
//  5. "crash" silences a node until its "recover" (fault injection), and
//     "recover" only follows a crash; the reboot re-enters the cycle loop
//     through a "wake" that needs no preceding "sleep";
//  6. between "recover" and that boot wake the node is still booting: it
//     neither touches the radio (no rx-data, schedule, or tx-outcome) nor
//     goes to sleep.
//
// It returns all violations found (empty for a conformant trace).
func Verify(recs []Record) []Violation {
	var out []Violation
	type nodeState struct {
		asleep    bool
		dead      bool
		crashed   bool
		rebooting bool // recovered; the boot wake is pending
	}
	states := make(map[packet.NodeID]*nodeState)
	lastTime := 0.0
	for i, r := range recs {
		if i > 0 && r.Time < lastTime {
			out = append(out, Violation{r, fmt.Sprintf("time went backwards (%.6f after %.6f)", r.Time, lastTime)})
		}
		lastTime = r.Time
		st := states[r.Node]
		if st == nil {
			st = &nodeState{}
			states[r.Node] = st
		}
		if st.dead {
			out = append(out, Violation{r, "event after death"})
			continue
		}
		if st.crashed && r.Event != "recover" {
			out = append(out, Violation{r, "event while crashed"})
			continue
		}
		switch r.Event {
		case "sleep":
			if st.asleep {
				out = append(out, Violation{r, "sleep while already asleep"})
			}
			if st.rebooting {
				out = append(out, Violation{r, "sleep before the boot wake"})
			}
			st.asleep = true
			st.rebooting = false
		case "wake":
			if !st.asleep && !st.rebooting {
				out = append(out, Violation{r, "wake without preceding sleep"})
			}
			st.asleep = false
			st.rebooting = false
		case "rx-data", "schedule", "tx-outcome":
			if st.asleep {
				out = append(out, Violation{r, "radio activity while asleep"})
			}
			if st.rebooting {
				out = append(out, Violation{r, "radio activity before boot wake"})
			}
		case "died", "killed":
			st.dead = true
		case "crash":
			st.crashed = true
		case "recover":
			if !st.crashed {
				out = append(out, Violation{r, "recover of a node that was not crashed"})
			}
			st.crashed = false
			st.rebooting = true
		case "gen", "gen-drop":
			// Sensing is independent of the radio; allowed while asleep.
		}
	}
	return out
}

// FormatViolations renders violations one per line (empty string if none).
func FormatViolations(vs []Violation) string {
	if len(vs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	return b.String()
}
