package trace

import (
	"strings"
	"testing"
)

func TestVerifyCleanTrace(t *testing.T) {
	recs := []Record{
		{Time: 1, Node: 1, Event: "gen"},
		{Time: 2, Node: 1, Event: "schedule"},
		{Time: 2.1, Node: 2, Event: "rx-data"},
		{Time: 2.2, Node: 1, Event: "tx-outcome"},
		{Time: 3, Node: 1, Event: "sleep"},
		{Time: 4, Node: 1, Event: "gen"}, // sensing while asleep is fine
		{Time: 6, Node: 1, Event: "wake"},
		{Time: 7, Node: 1, Event: "sleep"},
		{Time: 8, Node: 1, Event: "died"},
	}
	if vs := Verify(recs); len(vs) != 0 {
		t.Fatalf("clean trace produced violations:\n%s", FormatViolations(vs))
	}
}

func TestVerifyCatchesDoubleSleep(t *testing.T) {
	recs := []Record{
		{Time: 1, Node: 1, Event: "sleep"},
		{Time: 2, Node: 1, Event: "sleep"},
	}
	vs := Verify(recs)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "already asleep") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestVerifyCatchesWakeWithoutSleep(t *testing.T) {
	vs := Verify([]Record{{Time: 1, Node: 1, Event: "wake"}})
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "without preceding sleep") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestVerifyCatchesActivityWhileAsleep(t *testing.T) {
	recs := []Record{
		{Time: 1, Node: 1, Event: "sleep"},
		{Time: 2, Node: 1, Event: "rx-data"},
	}
	vs := Verify(recs)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "while asleep") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestVerifyCatchesEventsAfterDeath(t *testing.T) {
	recs := []Record{
		{Time: 1, Node: 1, Event: "killed"},
		{Time: 2, Node: 1, Event: "rx-data"},
		{Time: 3, Node: 2, Event: "gen"}, // other nodes unaffected
	}
	vs := Verify(recs)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "after death") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestVerifyAllowsCrashRecoverCycle(t *testing.T) {
	recs := []Record{
		{Time: 1, Node: 1, Event: "gen"},
		{Time: 2, Node: 1, Event: "crash"},
		{Time: 3, Node: 1, Event: "recover"},
		{Time: 3.1, Node: 1, Event: "wake"}, // reboot wake needs no sleep
		{Time: 4, Node: 1, Event: "sleep"},
		{Time: 4.5, Node: 1, Event: "crash"}, // crash while asleep
		{Time: 5, Node: 1, Event: "recover"},
		{Time: 5.1, Node: 1, Event: "wake"},
		{Time: 6, Node: 1, Event: "rx-data"},
	}
	if vs := Verify(recs); len(vs) != 0 {
		t.Fatalf("churn trace produced violations:\n%s", FormatViolations(vs))
	}
}

func TestVerifyCatchesEventsWhileCrashed(t *testing.T) {
	recs := []Record{
		{Time: 1, Node: 1, Event: "crash"},
		{Time: 2, Node: 1, Event: "rx-data"},
		{Time: 3, Node: 2, Event: "gen"}, // other nodes unaffected
	}
	vs := Verify(recs)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "while crashed") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestVerifyCatchesRadioActivityWhileRebooting(t *testing.T) {
	recs := []Record{
		{Time: 1, Node: 1, Event: "crash"},
		{Time: 2, Node: 1, Event: "recover"},
		{Time: 2.5, Node: 1, Event: "rx-data"}, // radio up before the boot wake
	}
	vs := Verify(recs)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "before boot wake") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestVerifyCatchesSleepWhileRebooting(t *testing.T) {
	recs := []Record{
		{Time: 1, Node: 1, Event: "crash"},
		{Time: 2, Node: 1, Event: "recover"},
		{Time: 2.5, Node: 1, Event: "sleep"}, // must boot through a wake first
	}
	vs := Verify(recs)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "before the boot wake") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestVerifyCatchesRecoverWithoutCrash(t *testing.T) {
	vs := Verify([]Record{{Time: 1, Node: 1, Event: "recover"}})
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "not crashed") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestVerifyCatchesTimeReversal(t *testing.T) {
	recs := []Record{
		{Time: 5, Node: 1, Event: "gen"},
		{Time: 4, Node: 2, Event: "gen"},
	}
	vs := Verify(recs)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "backwards") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestFormatViolations(t *testing.T) {
	if FormatViolations(nil) != "" {
		t.Fatal("empty violations render non-empty")
	}
	out := FormatViolations([]Violation{{Record{Time: 1.5, Node: 3, Event: "wake"}, "x"}})
	if !strings.Contains(out, "node=3") || !strings.Contains(out, "wake") {
		t.Fatalf("format: %q", out)
	}
}
